//! Executor primitives: the communication that runs *every* loop iteration.
//!
//! PARTI's executor phase is two collective operations around the local
//! computation:
//!
//! * [`gather`] — prefetch the off-processor elements named by a
//!   [`CommSchedule`] into each processor's ghost buffer, and
//! * [`scatter_add`] / [`scatter_op`] — push ghost-buffer accumulations back
//!   to the owning processors and combine them into the owned elements
//!   (the paper's left-hand-side `REDUCE (ADD, ...)` loops).
//!
//! Both are **drivers** over rank-local kernels executed through a
//! [`Backend`]: a pack kernel that charges each rank's outgoing messages,
//! and an unpack/combine kernel that moves the actual data while touching
//! only its own rank's buffers (its ghost buffer for gather, its
//! [`DistArray`] shard — via [`DistArray::par_shards_mut`] — for scatter).
//! Handing the same kernels to the sequential [`Machine`] engine or to
//! `chaos_dmsim::ThreadedBackend` produces byte-identical array contents
//! *and* byte-identical modeled clocks/statistics; only the wall-clock time
//! changes.
//!
//! Kernels walk the schedule's flat CSR arenas (see [`crate::schedule`]):
//! every send is a pair of contiguous `&[u32]` slices, so the per-iteration
//! inner loop is a strided copy with no nested-`Vec` pointer chasing, and
//! the transfer is charged per message without materializing an exchange
//! plan. The `*_into` variants reuse caller-owned buffers and perform
//! **zero heap allocations** in steady state on the sequential engine
//! (verified by the counting-allocator integration test), which is what
//! makes an inspector schedule worth reusing.
//!
//! The local computation between gather and scatter belongs to the
//! application (see the workload crates); [`charge_local_compute`] lets it
//! charge its flops to the simulated machine so executor rows in the tables
//! include both communication and computation.

use crate::darray::DistArray;
use crate::schedule::CommSchedule;
use chaos_dmsim::{Backend, Machine, PhaseEnd, RankCtx};

pub use crate::inspector::LocalRef;

/// Entry check shared by every executor driver: the schedule must match the
/// machine size. The rank-local kernels re-check this cheaply via
/// `debug_assert!`.
#[inline]
fn check_schedule(nprocs: usize, schedule: &CommSchedule) {
    assert_eq!(schedule.nprocs(), nprocs, "schedule/machine size mismatch");
}

/// Entry check for per-processor ghost-shaped buffers (`buffers[p]` must
/// have exactly `schedule.ghost_count(p)` elements). `shape_msg` is the
/// whole-slice panic message, `noun` names the buffer kind in the per-rank
/// message — both are part of the public panic contract.
fn check_ghost_buffers<T>(
    nprocs: usize,
    schedule: &CommSchedule,
    buffers: &[Vec<T>],
    shape_msg: &str,
    noun: &str,
) {
    check_schedule(nprocs, schedule);
    assert_eq!(buffers.len(), nprocs, "{shape_msg}");
    for (p, buf) in buffers.iter().enumerate() {
        assert_eq!(
            buf.len(),
            schedule.ghost_count(p),
            "processor {p} {noun} length mismatch"
        );
    }
}

/// Rank-local pack kernel of [`gather_into`]: the executing rank, as an
/// *owner*, charges the packing and transfer of each of its send lists.
/// Charges only — the simulator moves no payload for a gather; the unpack
/// kernel reads the owners' shards directly.
fn gather_pack_kernel(ctx: &mut RankCtx<'_>, schedule: &CommSchedule) {
    debug_assert_eq!(ctx.nprocs(), schedule.nprocs());
    let owner = ctx.rank();
    for send in schedule.sends(owner) {
        let words = send.offsets.len();
        ctx.charge_memory(owner, words as f64);
        ctx.charge_p2p(owner, send.to as usize, words);
    }
}

/// Rank-local unpack kernel of [`gather_into`]: the executing rank, as a
/// *requester*, fills its own ghost buffer from the owning shards (shared
/// reads), charging the unpacking per contiguous owner run. In the
/// canonical owner-sorted slot order (what the inspector and
/// [`CommSchedule::merge`] produce) that is exactly one charge per
/// incoming message, so modeled clocks agree with the plan-based gather
/// bit-for-bit; a hand-built schedule with unsorted ghost slots charges
/// the same per-rank totals in smaller pieces (values are unaffected).
fn gather_unpack_kernel<T: Clone>(
    ctx: &mut RankCtx<'_>,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    ghost: &mut [T],
) {
    debug_assert_eq!(ctx.nprocs(), schedule.nprocs());
    let me = ctx.rank();
    let owners = schedule.ghost_owners(me);
    let srcs = schedule.ghost_src_offsets(me);
    let mut lo = 0;
    while lo < owners.len() {
        let owner = owners[lo];
        let mut hi = lo + 1;
        while hi < owners.len() && owners[hi] == owner {
            hi += 1;
        }
        ctx.charge_memory(me, (hi - lo) as f64);
        let local = array.local(owner as usize);
        for slot in lo..hi {
            ghost[slot] = local[srcs[slot] as usize].clone();
        }
        lo = hi;
    }
}

/// Generalized form of [`gather_unpack_kernel`] that lands each ghost slot
/// at `place(slot)` inside a larger buffer — the shared resident ghost
/// region incremental schedules bind later loops into. Walks and charges
/// the schedule exactly like `gather_unpack_kernel` (per contiguous owner
/// run), so a mapped gather of a loop's own schedule costs the same as the
/// plain gather bit-for-bit; only the landing slots differ.
fn gather_unpack_kernel_indexed<T: Clone>(
    ctx: &mut RankCtx<'_>,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    ghost: &mut [T],
    place: impl Fn(usize) -> usize,
) {
    debug_assert_eq!(ctx.nprocs(), schedule.nprocs());
    let me = ctx.rank();
    let owners = schedule.ghost_owners(me);
    let srcs = schedule.ghost_src_offsets(me);
    let mut lo = 0;
    while lo < owners.len() {
        let owner = owners[lo];
        let mut hi = lo + 1;
        while hi < owners.len() && owners[hi] == owner {
            hi += 1;
        }
        ctx.charge_memory(me, (hi - lo) as f64);
        let local = array.local(owner as usize);
        for slot in lo..hi {
            ghost[place(slot)] = local[srcs[slot] as usize].clone();
        }
        lo = hi;
    }
}

/// Entry check shared by the offset/mapped gather drivers: one region row
/// per rank, each large enough to hold the slots the gather lands.
fn check_region_rows<T>(
    nprocs: usize,
    schedule: &CommSchedule,
    rank: usize,
    row: &[T],
    needed: usize,
) {
    debug_assert_eq!(schedule.nprocs(), nprocs);
    assert!(
        row.len() >= needed,
        "processor {rank} region row too short for the gather ({} < {needed})",
        row.len()
    );
}

/// [`gather_rows`] landing each rank's ghost slots at a per-rank base
/// offset inside a larger region row (`region[p][bases[p] + slot]`) instead
/// of a slot-for-slot buffer. This is the incremental-schedule fetch: the
/// schedule is the *difference* a later loop still needs, and the bases
/// point at its chunk of the shared resident ghost region. Charges are
/// those of gathering the difference schedule alone.
pub fn gather_rows_offset<'g, B, T, I>(
    backend: &mut B,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    bases: &[u32],
    ghosts: I,
) where
    B: Backend,
    T: Clone + Send + Sync + 'g,
    I: IntoIterator<Item = &'g mut Vec<T>>,
{
    let nprocs = backend.nprocs();
    check_schedule(nprocs, schedule);
    assert_eq!(bases.len(), nprocs, "bases must match machine size");
    backend.run_phase(
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts,
        |ctx, ghost: &mut Vec<T>| {
            let p = ctx.rank();
            let base = bases[p] as usize;
            check_region_rows(nprocs, schedule, p, ghost, base + schedule.ghost_count(p));
            gather_unpack_kernel_indexed(ctx, schedule, array, ghost, |slot| base + slot);
        },
    );
}

/// [`gather_rows_offset`] folded into an enclosing backend region via
/// [`run_phase_inline`](chaos_dmsim::run_phase_inline) — same charges, no
/// epoch advanced (the fused-sweep form).
pub fn gather_inline_offset<'g, T, I>(
    machine: &mut Machine,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    bases: &[u32],
    ghosts: I,
) where
    T: Clone + Send + Sync + 'g,
    I: IntoIterator<Item = &'g mut Vec<T>>,
{
    let nprocs = machine.nprocs();
    check_schedule(nprocs, schedule);
    assert_eq!(bases.len(), nprocs, "bases must match machine size");
    chaos_dmsim::run_phase_inline(
        machine,
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts,
        |ctx, ghost: &mut Vec<T>| {
            let p = ctx.rank();
            let base = bases[p] as usize;
            check_region_rows(nprocs, schedule, p, ghost, base + schedule.ghost_count(p));
            gather_unpack_kernel_indexed(ctx, schedule, array, ghost, |slot| base + slot);
        },
    );
}

/// [`gather_rows`] landing rank `p`'s ghost slot `i` at `maps[p][i]` inside
/// a larger region row — the full re-binding fetch incremental schedules
/// fall back to when the resident region's chunks are stale. The schedule
/// here is the loop's *own* schedule and the map is its binding into the
/// region, so charges are bit-identical to a plain [`gather_rows`] of that
/// schedule; only the landing slots differ.
pub fn gather_rows_mapped<'g, B, T, I>(
    backend: &mut B,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    maps: &[Vec<u32>],
    ghosts: I,
) where
    B: Backend,
    T: Clone + Send + Sync + 'g,
    I: IntoIterator<Item = &'g mut Vec<T>>,
{
    let nprocs = backend.nprocs();
    check_schedule(nprocs, schedule);
    assert_eq!(maps.len(), nprocs, "slot maps must match machine size");
    backend.run_phase(
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts,
        |ctx, ghost: &mut Vec<T>| {
            let p = ctx.rank();
            let map = maps[p].as_slice();
            assert_eq!(
                map.len(),
                schedule.ghost_count(p),
                "processor {p} slot map length mismatch"
            );
            gather_unpack_kernel_indexed(ctx, schedule, array, ghost, |slot| map[slot] as usize);
        },
    );
}

/// [`gather_rows_mapped`] folded into an enclosing backend region via
/// [`run_phase_inline`](chaos_dmsim::run_phase_inline) — same charges, no
/// epoch advanced (the fused-sweep form).
pub fn gather_inline_mapped<'g, T, I>(
    machine: &mut Machine,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    maps: &[Vec<u32>],
    ghosts: I,
) where
    T: Clone + Send + Sync + 'g,
    I: IntoIterator<Item = &'g mut Vec<T>>,
{
    let nprocs = machine.nprocs();
    check_schedule(nprocs, schedule);
    assert_eq!(maps.len(), nprocs, "slot maps must match machine size");
    chaos_dmsim::run_phase_inline(
        machine,
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts,
        |ctx, ghost: &mut Vec<T>| {
            let p = ctx.rank();
            let map = maps[p].as_slice();
            assert_eq!(
                map.len(),
                schedule.ghost_count(p),
                "processor {p} slot map length mismatch"
            );
            gather_unpack_kernel_indexed(ctx, schedule, array, ghost, |slot| map[slot] as usize);
        },
    );
}

/// Rank-local pack kernel of [`scatter_op`]: the executing rank, as an
/// *owner*, charges each requester's packing and the reverse transfer of
/// its ghost contributions. Public so a fused-sweep driver can charge the
/// same pack stage inside `Backend::run_sweep` — call it only inside an
/// exchange phase's pack stage (it charges p2p).
pub fn scatter_pack_kernel(ctx: &mut RankCtx<'_>, schedule: &CommSchedule) {
    debug_assert_eq!(ctx.nprocs(), schedule.nprocs());
    let owner = ctx.rank();
    for send in schedule.sends(owner) {
        let requester = send.to as usize;
        let words = send.ghost_slots.len();
        ctx.charge_memory(requester, words as f64);
        ctx.charge_p2p(requester, owner, words);
    }
}

/// Rank-local combine of one scatter stage, reading each requester's
/// contribution row through `row_of` — the generalized form used by both
/// [`scatter_op`] (rows in one rank-major matrix) and the fused sweep
/// (rows inside per-rank sweep areas). Charge order and combine order are
/// identical either way: the owner's schedule send-list order.
pub fn scatter_combine_rows<'a, T, F, G>(
    ctx: &mut RankCtx<'_>,
    schedule: &CommSchedule,
    row_of: G,
    local: &mut [T],
    combine: &F,
) where
    T: Clone + 'a,
    F: Fn(&mut T, T),
    G: Fn(usize) -> &'a [T],
{
    debug_assert_eq!(ctx.nprocs(), schedule.nprocs());
    let owner = ctx.rank();
    let mut updates = 0usize;
    for send in schedule.sends(owner) {
        let from = row_of(send.to as usize);
        updates += send.ghost_slots.len();
        for (&off, &slot) in send.offsets.iter().zip(send.ghost_slots) {
            combine(&mut local[off as usize], from[slot as usize].clone());
        }
    }
    ctx.charge_compute(owner, updates as f64);
}

/// Gather the off-processor elements described by `schedule` from `array`
/// into per-processor ghost buffers.
///
/// Returns `ghosts[p][slot]` aligned with the schedule's ghost slots for
/// processor `p`. Allocates the buffers; iteration loops that reuse a
/// schedule should allocate once and call [`gather_into`].
pub fn gather<B, T>(
    backend: &mut B,
    label: &str,
    schedule: &CommSchedule,
    array: &DistArray<T>,
) -> Vec<Vec<T>>
where
    B: Backend,
    T: Clone + Default + Send + Sync,
{
    let nprocs = backend.nprocs();
    check_schedule(nprocs, schedule);
    let mut ghosts: Vec<Vec<T>> = (0..nprocs)
        .map(|p| vec![T::default(); schedule.ghost_count(p)])
        .collect();
    gather_into(backend, label, schedule, array, &mut ghosts);
    ghosts
}

/// [`gather`] into caller-owned ghost buffers (`ghosts[p]` must have exactly
/// `schedule.ghost_count(p)` elements). Performs no heap allocation on the
/// sequential engine.
pub fn gather_into<B, T>(
    backend: &mut B,
    _label: &str,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    ghosts: &mut [Vec<T>],
) where
    B: Backend,
    T: Clone + Send + Sync,
{
    let nprocs = backend.nprocs();
    check_ghost_buffers(
        nprocs,
        schedule,
        ghosts,
        "ghost buffers must match machine size",
        "ghost buffer",
    );

    // Packing on the owners plus the transfers, then the phase barrier,
    // then unpacking at the requesters — the same charge order as an
    // ExchangePlan-based gather, so modeled clocks agree with the naive
    // reference bit-for-bit.
    backend.run_phase(
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts.iter_mut(),
        |ctx, ghost: &mut Vec<T>| gather_unpack_kernel(ctx, schedule, array, ghost),
    );
}

/// [`gather_into`] with the ghost rows supplied by an iterator (one row per
/// rank) instead of one rank-major matrix — the form the language executor
/// uses when rows are embedded in per-rank sweep areas. Charges are
/// identical to [`gather_into`]'s.
pub fn gather_rows<'g, B, T, I>(
    backend: &mut B,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    ghosts: I,
) where
    B: Backend,
    T: Clone + Send + Sync + 'g,
    I: IntoIterator<Item = &'g mut Vec<T>>,
{
    check_schedule(backend.nprocs(), schedule);
    backend.run_phase(
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts,
        |ctx, ghost: &mut Vec<T>| {
            assert_eq!(
                ghost.len(),
                schedule.ghost_count(ctx.rank()),
                "processor {} ghost buffer length mismatch",
                ctx.rank()
            );
            gather_unpack_kernel(ctx, schedule, array, ghost);
        },
    );
}

/// [`gather_into`] folded into an *enclosing* backend region: runs the same
/// pack/unpack kernels driver-side via
/// [`run_phase_inline`](chaos_dmsim::run_phase_inline), charging the exact
/// same sequence but advancing **no** epoch — the fused sweep uses this to
/// make gather → compute → scatter a single epoch. The ghost rows come from
/// an iterator so callers can hand out rows embedded in per-rank sweep
/// areas rather than one rank-major matrix.
pub fn gather_inline<'g, T, I>(
    machine: &mut Machine,
    schedule: &CommSchedule,
    array: &DistArray<T>,
    ghosts: I,
) where
    T: Clone + Send + Sync + 'g,
    I: IntoIterator<Item = &'g mut Vec<T>>,
{
    check_schedule(machine.nprocs(), schedule);
    chaos_dmsim::run_phase_inline(
        machine,
        PhaseEnd::Quiet,
        |ctx| gather_pack_kernel(ctx, schedule),
        ghosts,
        |ctx, ghost: &mut Vec<T>| {
            assert_eq!(
                ghost.len(),
                schedule.ghost_count(ctx.rank()),
                "processor {} ghost buffer length mismatch",
                ctx.rank()
            );
            gather_unpack_kernel(ctx, schedule, array, ghost);
        },
    );
}

/// Scatter ghost-buffer contributions back to their owners, adding them into
/// the owned elements (`y(owner) += contribution`).
pub fn scatter_add<B: Backend>(
    backend: &mut B,
    label: &str,
    schedule: &CommSchedule,
    array: &mut DistArray<f64>,
    contributions: &[Vec<f64>],
) {
    scatter_op(backend, label, schedule, array, contributions, |acc, c| {
        *acc += c
    });
}

/// Scatter ghost-buffer contributions back to their owners combining with an
/// arbitrary reduction operator (`add`, `max`, `min`, ... — the paper allows
/// any associative reduction on the left-hand side). Performs no heap
/// allocation on the sequential engine.
///
/// Each owner combines in its schedule's send-list order, so the reduction
/// order — and therefore the floating-point result — is identical on every
/// backend.
pub fn scatter_op<B, T, F>(
    backend: &mut B,
    _label: &str,
    schedule: &CommSchedule,
    array: &mut DistArray<T>,
    contributions: &[Vec<T>],
    combine: F,
) where
    B: Backend,
    T: Clone + Send + Sync,
    F: Fn(&mut T, T) + Sync,
{
    let nprocs = backend.nprocs();
    check_ghost_buffers(
        nprocs,
        schedule,
        contributions,
        "contributions must have one ghost buffer per processor",
        "ghost contribution",
    );

    // Reverse traffic: each requester sends its ghost slots back to the
    // owner, which combines them into its local elements. With the CSR
    // layout the owner's shard and the requesters' contribution buffers are
    // disjoint borrows, so the combine is rank-local with no intermediate
    // update list. Pack charges and transfers first, then the phase barrier,
    // then the owner-side combine — the same charge order as the plan-based
    // scatter.
    backend.run_phase(
        PhaseEnd::Quiet,
        |ctx| scatter_pack_kernel(ctx, schedule),
        array.par_shards_mut(),
        |ctx, local: &mut [T]| {
            scatter_combine_rows(
                ctx,
                schedule,
                |p| contributions[p].as_slice(),
                local,
                &combine,
            )
        },
    );
}

/// The reduction a scatter applies at the owners, as a value rather than a
/// closure — the form a compiled kernel's write-buffer bindings carry, so a
/// VM-driven executor can dispatch the scatter without re-deriving an
/// operator per sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScatterKind {
    /// `owner += contribution`.
    Add,
    /// `owner = max(owner, contribution)`.
    Max,
    /// `owner = min(owner, contribution)`.
    Min,
    /// `owner = contribution` unless the contribution is the NaN identity
    /// (last-writer-wins assignment of off-processor stores).
    Store,
}

impl ScatterKind {
    /// The identity element ghost write-buffers are initialized with: slots
    /// never written contribute nothing under this kind's combine.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            ScatterKind::Add => 0.0,
            ScatterKind::Max => f64::NEG_INFINITY,
            ScatterKind::Min => f64::INFINITY,
            ScatterKind::Store => f64::NAN,
        }
    }

    /// Apply the combine to an owned cell.
    #[inline]
    pub fn apply(self, cell: &mut f64, v: f64) {
        match self {
            ScatterKind::Add => *cell += v,
            ScatterKind::Max => *cell = cell.max(v),
            ScatterKind::Min => *cell = cell.min(v),
            ScatterKind::Store => {
                if !v.is_nan() {
                    *cell = v;
                }
            }
        }
    }
}

/// [`scatter_op`] dispatched on a [`ScatterKind`] value — the executor entry
/// point for VM-driven scatters. Charges and combine order are identical to
/// calling `scatter_op` with the corresponding closure.
pub fn scatter_reduce<B: Backend>(
    backend: &mut B,
    label: &str,
    schedule: &CommSchedule,
    array: &mut DistArray<f64>,
    contributions: &[Vec<f64>],
    kind: ScatterKind,
) {
    scatter_op(backend, label, schedule, array, contributions, |a, b| {
        kind.apply(a, b)
    });
}

/// [`scatter_reduce`] with each requester's contribution row supplied by a
/// lookup instead of one rank-major matrix — the form the language executor
/// uses when rows are embedded in per-rank sweep areas. Charges, combine
/// order and panic contract are identical to [`scatter_reduce`]'s.
pub fn scatter_reduce_rows<'a, B, G>(
    backend: &mut B,
    schedule: &CommSchedule,
    array: &mut DistArray<f64>,
    row_of: G,
    kind: ScatterKind,
) where
    B: Backend,
    G: Fn(usize) -> &'a [f64] + Sync,
{
    let nprocs = backend.nprocs();
    check_schedule(nprocs, schedule);
    for p in 0..nprocs {
        assert_eq!(
            row_of(p).len(),
            schedule.ghost_count(p),
            "processor {p} ghost contribution length mismatch"
        );
    }
    backend.run_phase(
        PhaseEnd::Quiet,
        |ctx| scatter_pack_kernel(ctx, schedule),
        array.par_shards_mut(),
        |ctx, local: &mut [f64]| {
            scatter_combine_rows(ctx, schedule, &row_of, local, &|a, b| kind.apply(a, b))
        },
    );
}

/// Charge `ops_per_proc[p]` computation units to each processor — the local
/// arithmetic of the executor's compute section.
pub fn charge_local_compute(machine: &mut Machine, ops_per_proc: &[f64]) {
    for (p, &ops) in ops_per_proc.iter().enumerate() {
        machine.charge_compute(p, ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::inspector::{AccessPattern, Inspector};
    use chaos_dmsim::MachineConfig;

    /// Set up: x = [0,10,20,...,70] block-distributed over 2 procs; proc 0
    /// references globals [4, 5], proc 1 references [0].
    fn setup() -> (Machine, DistArray<f64>, crate::inspector::InspectorResult) {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let x = DistArray::from_global(
            "x",
            dist.clone(),
            &(0..8).map(|i| (i * 10) as f64).collect::<Vec<_>>(),
        );
        let pattern = AccessPattern {
            refs: vec![vec![4, 5], vec![0]],
        };
        let r = Inspector.localize(&mut m, "L", &dist, &pattern);
        (m, x, r)
    }

    #[test]
    fn gather_fills_ghost_buffers() {
        let (mut m, x, r) = setup();
        let ghosts = gather(&mut m, "L", &r.schedule, &x);
        // Proc 0's ghosts are globals 4 and 5 (owner-local offsets 0 and 1).
        assert_eq!(ghosts[0], vec![40.0, 50.0]);
        // Proc 1's ghost is global 0.
        assert_eq!(ghosts[1], vec![0.0]);
        // The localized refs resolve to the right values.
        let v: Vec<f64> = r.localized[0]
            .iter()
            .map(|lr| *lr.resolve(x.local(0), &ghosts[0]))
            .collect();
        assert_eq!(v, vec![40.0, 50.0]);
    }

    #[test]
    fn gather_into_reuses_buffers() {
        let (mut m, x, r) = setup();
        let mut ghosts: Vec<Vec<f64>> = (0..2)
            .map(|p| vec![0.0; r.schedule.ghost_count(p)])
            .collect();
        gather_into(&mut m, "L", &r.schedule, &x, &mut ghosts);
        assert_eq!(ghosts[0], vec![40.0, 50.0]);
        assert_eq!(ghosts[1], vec![0.0]);
        // Second gather overwrites in place.
        ghosts[0][0] = -1.0;
        gather_into(&mut m, "L", &r.schedule, &x, &mut ghosts);
        assert_eq!(ghosts[0], vec![40.0, 50.0]);
    }

    #[test]
    fn gather_inline_matches_gather_into_without_an_epoch() {
        let (_, x, r) = setup();
        let mut a = Machine::new(MachineConfig::unit(2));
        let mut b = Machine::new(MachineConfig::unit(2));
        let mut ga: Vec<Vec<f64>> = (0..2)
            .map(|p| vec![0.0; r.schedule.ghost_count(p)])
            .collect();
        let mut gb = ga.clone();
        gather_into(&mut a, "L", &r.schedule, &x, &mut ga);
        gather_inline(&mut b, &r.schedule, &x, gb.iter_mut());
        assert_eq!(ga, gb);
        assert_eq!(a.elapsed(), b.elapsed());
        assert_eq!(a.stats().grand_totals(), b.stats().grand_totals());
        assert_eq!(a.epoch(), 1);
        assert_eq!(b.epoch(), 0, "inline gather advances no epoch");
    }

    #[test]
    fn gather_charges_messages() {
        let (mut m, x, r) = setup();
        let before = m.stats().grand_totals().messages;
        let _ = gather(&mut m, "L", &r.schedule, &x);
        assert_eq!(m.stats().grand_totals().messages - before, 2);
    }

    #[test]
    fn scatter_add_accumulates_at_owners() {
        let (mut m, _x, r) = setup();
        let mut y = DistArray::from_global("y", Distribution::block(8, 2), &[1.0; 8]);
        // Proc 0 contributes 5.0 to each of its ghost slots (globals 4, 5);
        // proc 1 contributes 7.0 to its ghost (global 0).
        let contributions = vec![vec![5.0, 5.0], vec![7.0]];
        scatter_add(&mut m, "L", &r.schedule, &mut y, &contributions);
        let g = y.to_global();
        assert_eq!(g[0], 8.0);
        assert_eq!(g[4], 6.0);
        assert_eq!(g[5], 6.0);
        assert_eq!(g[1], 1.0, "untouched elements keep their value");
    }

    #[test]
    fn scatter_op_supports_max() {
        let (mut m, _x, r) = setup();
        let mut y = DistArray::from_global("y", Distribution::block(8, 2), &[3.0; 8]);
        let contributions = vec![vec![10.0, 1.0], vec![2.0]];
        scatter_op(&mut m, "L", &r.schedule, &mut y, &contributions, |a, b| {
            *a = f64::max(*a, b)
        });
        let g = y.to_global();
        assert_eq!(g[4], 10.0);
        assert_eq!(g[5], 3.0);
        assert_eq!(g[0], 3.0);
    }

    #[test]
    fn gather_scatter_roundtrip_conserves_sum() {
        // Property: scatter_add of gathered values doubles exactly the
        // referenced elements.
        let (mut m, x, r) = setup();
        let ghosts = gather(&mut m, "L", &r.schedule, &x);
        let mut y = x.clone();
        scatter_add(&mut m, "L", &r.schedule, &mut y, &ghosts);
        let xg = x.to_global();
        let yg = y.to_global();
        for g in 0..8 {
            let referenced_off_proc = [0usize, 4, 5].contains(&g);
            if referenced_off_proc {
                assert_eq!(yg[g], 2.0 * xg[g]);
            } else {
                assert_eq!(yg[g], xg[g]);
            }
        }
    }

    #[test]
    fn gather_and_scatter_agree_across_backends() {
        use chaos_dmsim::ThreadedBackend;
        let (_, x, r) = setup();
        let mut seq = Machine::new(MachineConfig::unit(2));
        let mut thr = ThreadedBackend::from_config(MachineConfig::unit(2));
        let ghosts_seq = gather(&mut seq, "L", &r.schedule, &x);
        let ghosts_thr = gather(&mut thr, "L", &r.schedule, &x);
        assert_eq!(ghosts_seq, ghosts_thr);
        let mut y_seq = x.clone();
        let mut y_thr = x.clone();
        scatter_add(&mut seq, "L", &r.schedule, &mut y_seq, &ghosts_seq);
        scatter_add(&mut thr, "L", &r.schedule, &mut y_thr, &ghosts_thr);
        assert_eq!(y_seq.to_global(), y_thr.to_global());
        assert_eq!(seq.elapsed(), thr.machine().elapsed());
        assert_eq!(
            seq.stats().grand_totals(),
            thr.machine().stats().grand_totals()
        );
    }

    #[test]
    #[should_panic(expected = "ghost contribution length mismatch")]
    fn scatter_rejects_wrong_ghost_shape() {
        let (mut m, _x, r) = setup();
        let mut y = DistArray::from_global("y", Distribution::block(8, 2), &[0.0; 8]);
        scatter_add(&mut m, "L", &r.schedule, &mut y, &[vec![1.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "ghost buffer length mismatch")]
    fn gather_into_rejects_wrong_buffer_shape() {
        let (mut m, x, r) = setup();
        let mut ghosts = vec![vec![0.0; 9], vec![0.0; 9]];
        gather_into(&mut m, "L", &r.schedule, &x, &mut ghosts);
    }

    #[test]
    #[should_panic(expected = "schedule/machine size mismatch")]
    fn gather_rejects_mismatched_machine() {
        let (_, x, r) = setup();
        let mut wrong = Machine::new(MachineConfig::unit(4));
        let _ = gather(&mut wrong, "L", &r.schedule, &x);
    }

    #[test]
    fn mapped_gather_of_own_schedule_charges_like_plain_gather() {
        let (_, x, r) = setup();
        let mut a = Machine::new(MachineConfig::unit(2));
        let mut b = Machine::new(MachineConfig::unit(2));
        let mut plain: Vec<Vec<f64>> = (0..2)
            .map(|p| vec![0.0; r.schedule.ghost_count(p)])
            .collect();
        // Region rows are larger than the schedule; a reversing map lands
        // slot i at row position ghost_count - 1 - i.
        let mut rows: Vec<Vec<f64>> = (0..2)
            .map(|p| vec![-1.0; r.schedule.ghost_count(p) + 2])
            .collect();
        let maps: Vec<Vec<u32>> = (0..2)
            .map(|p| {
                let n = r.schedule.ghost_count(p) as u32;
                (0..n).map(|i| n - 1 - i).collect()
            })
            .collect();
        gather_rows(&mut a, &r.schedule, &x, plain.iter_mut());
        gather_rows_mapped(&mut b, &r.schedule, &x, &maps, rows.iter_mut());
        for p in 0..2 {
            for (slot, &v) in plain[p].iter().enumerate() {
                assert_eq!(rows[p][maps[p][slot] as usize], v);
            }
            assert_eq!(*rows[p].last().unwrap(), -1.0, "untouched tail kept");
        }
        // The mapped gather walks and charges the same schedule: modeled
        // clocks and stats are bit-identical to the plain gather.
        assert_eq!(a.elapsed(), b.elapsed());
        assert_eq!(a.stats().grand_totals(), b.stats().grand_totals());
    }

    #[test]
    fn offset_gather_fetches_the_difference_into_the_region_chunk() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let dist = Distribution::block(8, 2);
        let x = DistArray::from_global(
            "x",
            dist.clone(),
            &(0..8).map(|i| (i * 10) as f64).collect::<Vec<_>>(),
        );
        // Loop A referenced globals [4, 5] on proc 0; loop B references
        // [5, 6] — only global 6 still needs fetching.
        let a = Inspector.localize(
            &mut m,
            "A",
            &dist,
            &AccessPattern {
                refs: vec![vec![4, 5], vec![0]],
            },
        );
        let b = Inspector.localize(
            &mut m,
            "B",
            &dist,
            &AccessPattern {
                refs: vec![vec![5, 6], vec![0]],
            },
        );
        let diff = b.schedule.difference(&a.schedule);
        assert_eq!(diff.total_ghosts(), 1);
        let (merged, map) = a.schedule.merge_incremental(&b.schedule);
        let bases: Vec<u32> = (0..2).map(|p| a.schedule.ghost_count(p) as u32).collect();
        let mut rows: Vec<Vec<f64>> = (0..2).map(|p| vec![0.0; merged.ghost_count(p)]).collect();
        let msgs_before = m.stats().grand_totals().messages;
        gather_rows_offset(&mut m, &a.schedule, &x, &[0, 0], rows.iter_mut());
        gather_rows_offset(&mut m, &diff, &x, &bases, rows.iter_mut());
        // The incremental fetch moved one message (proc 1 → proc 0) instead
        // of loop B's own two.
        assert_eq!(m.stats().grand_totals().messages - msgs_before, 3);
        assert_eq!(b.schedule.message_count(), 2);
        // Loop B reads its values through the re-binding map.
        for p in 0..2 {
            for (slot, (o, s)) in b.schedule.ghost_sources(p).enumerate() {
                let expected = x.local(o as usize)[s as usize];
                assert_eq!(rows[p][map[p][slot] as usize], expected);
            }
        }
        // Inline variants charge identically to the run_phase forms.
        let mut m2 = Machine::new(MachineConfig::unit(2));
        let mut rows2: Vec<Vec<f64>> = (0..2).map(|p| vec![0.0; merged.ghost_count(p)]).collect();
        gather_rows_offset(&mut m2, &a.schedule, &x, &[0, 0], rows2.iter_mut());
        gather_inline_offset(&mut m2, &diff, &x, &bases, rows2.iter_mut());
        assert_eq!(rows, rows2);
        let mut rows3 = rows2.clone();
        let mut m3 = Machine::new(MachineConfig::unit(2));
        gather_inline_mapped(&mut m3, &b.schedule, &x, &map, rows3.iter_mut());
        assert_eq!(rows, rows3);
    }

    #[test]
    #[should_panic(expected = "region row too short")]
    fn offset_gather_rejects_short_region_rows() {
        let (mut m, x, r) = setup();
        let mut rows = [vec![0.0; 1], vec![0.0; 1]];
        gather_rows_offset(&mut m, &r.schedule, &x, &[1, 1], rows.iter_mut());
    }

    #[test]
    fn charge_local_compute_advances_clocks() {
        let mut m = Machine::new(MachineConfig::unit(2));
        charge_local_compute(&mut m, &[10.0, 20.0]);
        let e = m.elapsed();
        assert_eq!(e.compute[0], 10.0);
        assert_eq!(e.compute[1], 20.0);
    }
}
