//! Communication schedules.
//!
//! A schedule records, once, everything needed to move the off-processor
//! data a loop references: which elements each owner must send to which
//! requester (the *send lists*), and into which ghost-buffer slot each
//! incoming value lands (the *receive slots*). Building a schedule requires
//! one request exchange (an inspector cost); using it — with
//! [`crate::executor::gather`] / [`crate::executor::scatter_add`] — is an
//! executor cost paid every iteration. Amortizing the former over many of
//! the latter is exactly what the paper's schedule-reuse mechanism is for.

use chaos_dmsim::{ExchangePlan, Machine};

/// A reusable communication schedule for one loop / one distributed-array
/// distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    nprocs: usize,
    /// For requester `p`: the `(owner, owner_local_offset)` of each ghost
    /// slot, in slot order (sorted by owner then offset — deterministic).
    ghost_sources: Vec<Vec<(u32, u32)>>,
    /// For owner `o`: `(requester, local offsets to pack, ghost slots at the
    /// requester matching that packing order)`.
    send_lists: Vec<Vec<SendList>>,
}

/// One owner→requester send list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendList {
    /// The processor the data is sent to.
    pub to: u32,
    /// Local offsets (on the owner) to pack, in order.
    pub offsets: Vec<u32>,
    /// Ghost slots (on the requester) the packed values land in, same order.
    pub ghost_slots: Vec<u32>,
}

impl CommSchedule {
    /// Build a schedule from each requester's deduplicated off-processor
    /// reference list.
    ///
    /// `ghost_sources[p]` must list, for every ghost slot of processor `p`,
    /// the owning processor and the element's local offset there. Slots must
    /// not reference elements owned by `p` itself (those are local accesses,
    /// not ghosts).
    ///
    /// Building the schedule performs the request exchange (each requester
    /// tells each owner which offsets it needs) and charges it to `machine` —
    /// this is part of the inspector cost in the paper's tables.
    pub fn build(
        machine: &mut Machine,
        label: &str,
        ghost_sources: Vec<Vec<(u32, u32)>>,
    ) -> Self {
        let nprocs = machine.nprocs();
        assert_eq!(
            ghost_sources.len(),
            nprocs,
            "ghost_sources must have one entry per processor"
        );

        // Group each requester's slots by owner.
        // grouped[owner][requester] -> (offsets, slots)
        let mut grouped: Vec<Vec<(Vec<u32>, Vec<u32>)>> =
            vec![vec![(Vec::new(), Vec::new()); nprocs]; nprocs];
        for (requester, sources) in ghost_sources.iter().enumerate() {
            for (slot, &(owner, offset)) in sources.iter().enumerate() {
                assert!(
                    (owner as usize) < nprocs,
                    "ghost slot references processor {owner} out of range"
                );
                assert_ne!(
                    owner as usize, requester,
                    "ghost slot on processor {requester} references itself"
                );
                let cell = &mut grouped[owner as usize][requester];
                cell.0.push(offset);
                cell.1.push(slot as u32);
            }
        }

        // The request exchange: requester -> owner, one word per requested
        // element.
        let mut plan: ExchangePlan<u32> = ExchangePlan::new(nprocs);
        for (owner, row) in grouped.iter().enumerate() {
            for (requester, (offsets, _)) in row.iter().enumerate() {
                if !offsets.is_empty() {
                    plan.push(requester, owner, offsets.clone());
                }
            }
        }
        machine.exchange(&format!("{label}:schedule-build"), plan);

        let send_lists: Vec<Vec<SendList>> = grouped
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .enumerate()
                    .filter(|(_, (offsets, _))| !offsets.is_empty())
                    .map(|(requester, (offsets, ghost_slots))| SendList {
                        to: requester as u32,
                        offsets,
                        ghost_slots,
                    })
                    .collect()
            })
            .collect();

        CommSchedule {
            nprocs,
            ghost_sources,
            send_lists,
        }
    }

    /// Processor count the schedule was built for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of ghost slots (off-processor copies) held by `proc`.
    pub fn ghost_count(&self, proc: usize) -> usize {
        self.ghost_sources[proc].len()
    }

    /// Total ghost slots over all processors — the communication volume (in
    /// elements) of one gather.
    pub fn total_ghosts(&self) -> usize {
        self.ghost_sources.iter().map(Vec::len).sum()
    }

    /// Number of point-to-point messages one gather (or scatter) performs.
    pub fn message_count(&self) -> usize {
        self.send_lists.iter().map(Vec::len).sum()
    }

    /// The `(owner, offset)` sources of processor `proc`'s ghost slots.
    pub fn ghost_sources(&self, proc: usize) -> &[(u32, u32)] {
        &self.ghost_sources[proc]
    }

    /// The send lists of owner `proc`.
    pub fn send_lists(&self, proc: usize) -> &[SendList] {
        &self.send_lists[proc]
    }

    /// Maximum ghost count over processors (bounds per-processor buffer
    /// space).
    pub fn max_ghosts(&self) -> usize {
        self.ghost_sources.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Merge two schedules built against the *same* distribution into one,
    /// so that a single gather/scatter serves both loops (PARTI's schedule
    /// merging: amortizing per-message start-up across loops that reference
    /// overlapping ghost sets).
    ///
    /// Returns the merged schedule plus, for each input schedule, a
    /// per-processor mapping from its old ghost-slot numbers to slots in the
    /// merged schedule, so previously localized references remain usable.
    ///
    /// Merging is a purely local operation (no communication is charged):
    /// both inputs already carry the owner-side information needed to
    /// rebuild the send lists.
    pub fn merge(&self, other: &CommSchedule) -> (CommSchedule, Vec<Vec<u32>>, Vec<Vec<u32>>) {
        assert_eq!(
            self.nprocs, other.nprocs,
            "cannot merge schedules built for different machine sizes"
        );
        let nprocs = self.nprocs;
        let mut merged_sources: Vec<Vec<(u32, u32)>> = Vec::with_capacity(nprocs);
        let mut map_a: Vec<Vec<u32>> = Vec::with_capacity(nprocs);
        let mut map_b: Vec<Vec<u32>> = Vec::with_capacity(nprocs);
        for p in 0..nprocs {
            let mut union: Vec<(u32, u32)> = self.ghost_sources[p]
                .iter()
                .chain(other.ghost_sources[p].iter())
                .copied()
                .collect();
            union.sort_unstable();
            union.dedup();
            let slot_of = |src: &(u32, u32)| union.binary_search(src).expect("present") as u32;
            map_a.push(self.ghost_sources[p].iter().map(slot_of).collect());
            map_b.push(other.ghost_sources[p].iter().map(slot_of).collect());
            merged_sources.push(union);
        }

        // Rebuild send lists locally from the merged ghost sources.
        let mut grouped: Vec<Vec<(Vec<u32>, Vec<u32>)>> =
            vec![vec![(Vec::new(), Vec::new()); nprocs]; nprocs];
        for (requester, sources) in merged_sources.iter().enumerate() {
            for (slot, &(owner, offset)) in sources.iter().enumerate() {
                let cell = &mut grouped[owner as usize][requester];
                cell.0.push(offset);
                cell.1.push(slot as u32);
            }
        }
        let send_lists: Vec<Vec<SendList>> = grouped
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .enumerate()
                    .filter(|(_, (offsets, _))| !offsets.is_empty())
                    .map(|(requester, (offsets, ghost_slots))| SendList {
                        to: requester as u32,
                        offsets,
                        ghost_slots,
                    })
                    .collect()
            })
            .collect();

        (
            CommSchedule {
                nprocs,
                ghost_sources: merged_sources,
                send_lists,
            },
            map_a,
            map_b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    /// 2 procs; proc 0 needs elements at offsets 3 and 5 of proc 1, proc 1
    /// needs offset 0 of proc 0.
    fn simple_schedule(machine: &mut Machine) -> CommSchedule {
        CommSchedule::build(
            machine,
            "test",
            vec![vec![(1, 3), (1, 5)], vec![(0, 0)]],
        )
    }

    #[test]
    fn build_produces_matching_send_lists() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let s = simple_schedule(&mut m);
        assert_eq!(s.nprocs(), 2);
        assert_eq!(s.ghost_count(0), 2);
        assert_eq!(s.ghost_count(1), 1);
        assert_eq!(s.total_ghosts(), 3);
        assert_eq!(s.message_count(), 2);
        assert_eq!(s.max_ghosts(), 2);

        let from1 = s.send_lists(1);
        assert_eq!(from1.len(), 1);
        assert_eq!(from1[0].to, 0);
        assert_eq!(from1[0].offsets, vec![3, 5]);
        assert_eq!(from1[0].ghost_slots, vec![0, 1]);

        let from0 = s.send_lists(0);
        assert_eq!(from0[0].to, 1);
        assert_eq!(from0[0].offsets, vec![0]);
    }

    #[test]
    fn build_charges_request_exchange() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let _ = simple_schedule(&mut m);
        let t = m.stats().grand_totals();
        assert_eq!(t.messages, 2);
        assert!(m.elapsed().max_seconds() > 0.0);
    }

    #[test]
    fn empty_schedule_is_free_of_messages() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let s = CommSchedule::build(&mut m, "empty", vec![Vec::new(); 4]);
        assert_eq!(s.total_ghosts(), 0);
        assert_eq!(s.message_count(), 0);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    #[should_panic(expected = "references itself")]
    fn self_reference_rejected() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let _ = CommSchedule::build(&mut m, "bad", vec![vec![(0, 1)], Vec::new()]);
    }

    #[test]
    #[should_panic(expected = "one entry per processor")]
    fn wrong_shape_rejected() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let _ = CommSchedule::build(&mut m, "bad", vec![Vec::new(); 2]);
    }

    #[test]
    fn merge_unions_ghosts_and_remaps_slots() {
        let mut m = Machine::new(MachineConfig::unit(2));
        // Loop A needs offsets 3 and 5 of proc 1; loop B needs 5 and 7.
        let a = CommSchedule::build(&mut m, "a", vec![vec![(1, 3), (1, 5)], vec![]]);
        let b = CommSchedule::build(&mut m, "b", vec![vec![(1, 5), (1, 7)], vec![(0, 2)]]);
        let messages_before = m.stats().grand_totals().messages;
        let (merged, map_a, map_b) = a.merge(&b);
        // Merging is local: no new messages were charged.
        assert_eq!(m.stats().grand_totals().messages, messages_before);
        // Union on proc 0: offsets 3, 5, 7 of proc 1 (deduplicated).
        assert_eq!(merged.ghost_count(0), 3);
        assert_eq!(merged.ghost_count(1), 1);
        assert_eq!(merged.ghost_sources(0), &[(1, 3), (1, 5), (1, 7)]);
        // Old slots still address the same elements in the merged schedule.
        for (old_slot, &(owner, off)) in a.ghost_sources(0).iter().enumerate() {
            assert_eq!(merged.ghost_sources(0)[map_a[0][old_slot] as usize], (owner, off));
        }
        for (old_slot, &(owner, off)) in b.ghost_sources(0).iter().enumerate() {
            assert_eq!(merged.ghost_sources(0)[map_b[0][old_slot] as usize], (owner, off));
        }
        // One message per (owner, requester) pair with data: 1->0 and 0->1.
        assert_eq!(merged.message_count(), 2);
    }

    #[test]
    fn merged_schedule_gathers_the_union_correctly() {
        use crate::darray::DistArray;
        use crate::dist::Distribution;
        use crate::executor::gather;
        let mut m = Machine::new(MachineConfig::unit(2));
        let x = DistArray::from_global(
            "x",
            Distribution::block(8, 2),
            &(0..8).map(|i| i as f64 * 10.0).collect::<Vec<_>>(),
        );
        let a = CommSchedule::build(&mut m, "a", vec![vec![(1, 0)], vec![]]); // global 4
        let b = CommSchedule::build(&mut m, "b", vec![vec![(1, 2)], vec![(0, 1)]]); // globals 6, 1
        let (merged, map_a, map_b) = a.merge(&b);
        let ghosts = gather(&mut m, "merged", &merged, &x);
        assert_eq!(ghosts[0][map_a[0][0] as usize], 40.0);
        assert_eq!(ghosts[0][map_b[0][0] as usize], 60.0);
        assert_eq!(ghosts[1][map_b[1][0] as usize], 10.0);
    }

    #[test]
    #[should_panic(expected = "different machine sizes")]
    fn merge_rejects_mismatched_schedules() {
        let mut m2 = Machine::new(MachineConfig::unit(2));
        let mut m4 = Machine::new(MachineConfig::unit(4));
        let a = CommSchedule::build(&mut m2, "a", vec![Vec::new(); 2]);
        let b = CommSchedule::build(&mut m4, "b", vec![Vec::new(); 4]);
        let _ = a.merge(&b);
    }
}
