//! Communication schedules.
//!
//! A schedule records, once, everything needed to move the off-processor
//! data a loop references: which elements each owner must send to which
//! requester (the *send lists*), and into which ghost-buffer slot each
//! incoming value lands (the *receive slots*). Building a schedule requires
//! one request exchange (an inspector cost); using it — with
//! [`crate::executor::gather`] / [`crate::executor::scatter_add`] — is an
//! executor cost paid every iteration. Amortizing the former over many of
//! the latter is exactly what the paper's schedule-reuse mechanism is for.
//!
//! # Layout
//!
//! Because schedule *use* is the per-iteration hot path, the schedule is
//! stored as flat CSR (compressed sparse row) arenas rather than nested
//! `Vec<Vec<…>>`s — the same flat offset-array layout the original
//! PARTI/CHAOS C runtime used:
//!
//! * **Ghost side** (per requester, struct-of-arrays): `ghost_off[p] ..
//!   ghost_off[p+1]` indexes requester `p`'s ghost slots inside
//!   `ghost_owner` / `ghost_src`, sorted by `(owner, offset)`.
//! * **Send side** (per owner, two-level CSR): `send_off[o] ..
//!   send_off[o+1]` indexes owner `o`'s send lists inside `send_to` /
//!   `seg_off`; send list `s` packs the owner-local offsets
//!   `pack_src[seg_off[s] .. seg_off[s+1]]` destined for the requester's
//!   ghost slots `pack_slot[seg_off[s] .. seg_off[s+1]]`.
//!
//! The executor therefore iterates contiguous `&[u32]` slices with zero
//! per-send pointer chasing. A naive nested-`Vec` reference implementation
//! is retained in [`crate::naive`] and checked byte-for-byte equivalent by
//! the property tests.

use chaos_dmsim::{ExchangePlan, Machine};

/// A reusable communication schedule for one loop / one distributed-array
/// distribution, stored as flat CSR arenas (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    nprocs: usize,
    /// CSR offsets over the ghost-side arrays: requester `p`'s slots are
    /// `ghost_off[p] .. ghost_off[p+1]`.
    ghost_off: Vec<u32>,
    /// Owning processor of each ghost slot.
    ghost_owner: Vec<u32>,
    /// Owner-local offset of each ghost slot's source element.
    ghost_src: Vec<u32>,
    /// CSR offsets over `send_to` / `seg_off`: owner `o`'s send lists are
    /// `send_off[o] .. send_off[o+1]`.
    send_off: Vec<u32>,
    /// Destination requester of each send list.
    send_to: Vec<u32>,
    /// CSR offsets over the packed entry arrays; send list `s` owns entries
    /// `seg_off[s] .. seg_off[s+1]`. Length `send_to.len() + 1`.
    seg_off: Vec<u32>,
    /// Owner-local offsets to pack, per entry.
    pack_src: Vec<u32>,
    /// Ghost slots at the requester the packed values land in, per entry.
    pack_slot: Vec<u32>,
}

/// One owner→requester send list, borrowed from the schedule's arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendRef<'a> {
    /// The processor the data is sent to.
    pub to: u32,
    /// Owner-local offsets to pack, in order.
    pub offsets: &'a [u32],
    /// Ghost slots (on the requester) the packed values land in, same order.
    pub ghost_slots: &'a [u32],
}

impl CommSchedule {
    /// Build a schedule from each requester's deduplicated off-processor
    /// reference list.
    ///
    /// `ghost_sources[p]` must list, for every ghost slot of processor `p`,
    /// the owning processor and the element's local offset there. Slots must
    /// not reference elements owned by `p` itself (those are local accesses,
    /// not ghosts).
    ///
    /// Building the schedule performs the request exchange (each requester
    /// tells each owner which offsets it needs) and charges it to `machine` —
    /// this is part of the inspector cost in the paper's tables.
    pub fn build(machine: &mut Machine, label: &str, ghost_sources: Vec<Vec<(u32, u32)>>) -> Self {
        let nprocs = machine.nprocs();
        assert_eq!(
            ghost_sources.len(),
            nprocs,
            "ghost_sources must have one entry per processor"
        );
        let total: usize = ghost_sources.iter().map(Vec::len).sum();
        let mut ghost_off = Vec::with_capacity(nprocs + 1);
        let mut ghost_owner = Vec::with_capacity(total);
        let mut ghost_src = Vec::with_capacity(total);
        ghost_off.push(0u32);
        for sources in &ghost_sources {
            for &(owner, offset) in sources {
                ghost_owner.push(owner);
                ghost_src.push(offset);
            }
            ghost_off.push(ghost_owner.len() as u32);
        }
        Self::from_csr_parts(machine, label, ghost_off, ghost_owner, ghost_src)
    }

    /// Build a schedule directly from the flat ghost-side arrays (the form
    /// the inspector produces). See the module docs for the layout. Performs
    /// and charges the same request exchange as [`CommSchedule::build`].
    pub fn from_csr_parts(
        machine: &mut Machine,
        label: &str,
        ghost_off: Vec<u32>,
        ghost_owner: Vec<u32>,
        ghost_src: Vec<u32>,
    ) -> Self {
        let schedule =
            Self::from_csr_parts_local(machine.nprocs(), ghost_off, ghost_owner, ghost_src);
        schedule.charge_build_exchange(machine, label);
        schedule
    }

    /// Build a schedule from the flat ghost-side arrays **without charging
    /// the request exchange** — the deferred form used when several
    /// schedules are [merged](CommSchedule::merge) into one before a single
    /// [`charge_build_exchange`](CommSchedule::charge_build_exchange) pays
    /// for the combined request traffic.
    pub fn from_csr_parts_local(
        nprocs: usize,
        ghost_off: Vec<u32>,
        ghost_owner: Vec<u32>,
        ghost_src: Vec<u32>,
    ) -> Self {
        assert_eq!(
            ghost_off.len(),
            nprocs + 1,
            "ghost_sources must have one entry per processor"
        );
        assert_eq!(ghost_owner.len(), ghost_src.len());
        assert_eq!(*ghost_off.last().unwrap() as usize, ghost_owner.len());

        // Validate the ghost side, then hand the layout pass to
        // `from_ghost_arrays` (shared with `merge`).
        for p in 0..nprocs {
            let (lo, hi) = (ghost_off[p] as usize, ghost_off[p + 1] as usize);
            for &owner in &ghost_owner[lo..hi] {
                assert!(
                    (owner as usize) < nprocs,
                    "ghost slot references processor {owner} out of range"
                );
                assert_ne!(
                    owner as usize, p,
                    "ghost slot on processor {p} references itself"
                );
            }
        }
        Self::from_ghost_arrays(nprocs, ghost_off, ghost_owner, ghost_src)
    }

    /// Perform and charge the schedule's request exchange (each requester
    /// tells each owner which offsets it needs — one word per requested
    /// element). Part of the inspector cost in the paper's tables; a merged
    /// schedule charges it once for all the loops' decomposition groups it
    /// serves.
    pub fn charge_build_exchange(&self, machine: &mut Machine, label: &str) {
        assert_eq!(machine.nprocs(), self.nprocs, "schedule/machine mismatch");
        let mut plan: ExchangePlan<u32> = ExchangePlan::new(self.nprocs);
        for owner in 0..self.nprocs {
            for send in self.sends(owner) {
                plan.push(send.to as usize, owner, send.offsets.to_vec());
            }
        }
        machine.exchange(&format!("{label}:schedule-build"), plan);
    }

    /// Processor count the schedule was built for.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of ghost slots (off-processor copies) held by `proc`.
    #[inline]
    pub fn ghost_count(&self, proc: usize) -> usize {
        (self.ghost_off[proc + 1] - self.ghost_off[proc]) as usize
    }

    /// Total ghost slots over all processors — the communication volume (in
    /// elements) of one gather.
    pub fn total_ghosts(&self) -> usize {
        self.ghost_owner.len()
    }

    /// Number of point-to-point messages one gather (or scatter) performs.
    pub fn message_count(&self) -> usize {
        self.send_to.len()
    }

    /// The `(owner, offset)` sources of processor `proc`'s ghost slots, in
    /// slot order.
    pub fn ghost_sources(&self, proc: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (lo, hi) = (
            self.ghost_off[proc] as usize,
            self.ghost_off[proc + 1] as usize,
        );
        self.ghost_owner[lo..hi]
            .iter()
            .zip(&self.ghost_src[lo..hi])
            .map(|(&o, &s)| (o, s))
    }

    /// Owning processor of each of `proc`'s ghost slots (slot order).
    pub fn ghost_owners(&self, proc: usize) -> &[u32] {
        &self.ghost_owner[self.ghost_off[proc] as usize..self.ghost_off[proc + 1] as usize]
    }

    /// Owner-local source offset of each of `proc`'s ghost slots (slot
    /// order).
    pub fn ghost_src_offsets(&self, proc: usize) -> &[u32] {
        &self.ghost_src[self.ghost_off[proc] as usize..self.ghost_off[proc + 1] as usize]
    }

    /// The send lists of owner `proc`, as borrowed slices over the packed
    /// arenas — the executor's zero-indirection iteration.
    pub fn sends(&self, proc: usize) -> impl Iterator<Item = SendRef<'_>> + '_ {
        let (lo, hi) = (
            self.send_off[proc] as usize,
            self.send_off[proc + 1] as usize,
        );
        (lo..hi).map(move |s| {
            let (a, b) = (self.seg_off[s] as usize, self.seg_off[s + 1] as usize);
            SendRef {
                to: self.send_to[s],
                offsets: &self.pack_src[a..b],
                ghost_slots: &self.pack_slot[a..b],
            }
        })
    }

    /// Maximum ghost count over processors (bounds per-processor buffer
    /// space).
    pub fn max_ghosts(&self) -> usize {
        (0..self.nprocs)
            .map(|p| self.ghost_count(p))
            .max()
            .unwrap_or(0)
    }

    /// Merge two schedules built against the *same* distribution into one,
    /// so that a single gather/scatter serves both loops (PARTI's schedule
    /// merging: amortizing per-message start-up across loops that reference
    /// overlapping ghost sets).
    ///
    /// Returns the merged schedule plus, for each input schedule, a
    /// per-processor mapping from its old ghost-slot numbers to slots in the
    /// merged schedule, so previously localized references remain usable.
    ///
    /// Merging is a purely local operation (no communication is charged):
    /// both inputs already carry the owner-side information needed to
    /// rebuild the send lists.
    pub fn merge(&self, other: &CommSchedule) -> (CommSchedule, Vec<Vec<u32>>, Vec<Vec<u32>>) {
        assert_eq!(
            self.nprocs, other.nprocs,
            "cannot merge schedules built for different machine sizes"
        );
        let nprocs = self.nprocs;
        let mut ghost_off = Vec::with_capacity(nprocs + 1);
        let mut ghost_owner = Vec::with_capacity(self.ghost_owner.len() + other.ghost_owner.len());
        let mut ghost_src = Vec::with_capacity(ghost_owner.capacity());
        let mut map_a: Vec<Vec<u32>> = Vec::with_capacity(nprocs);
        let mut map_b: Vec<Vec<u32>> = Vec::with_capacity(nprocs);
        ghost_off.push(0u32);
        let key = |o: u32, s: u32| ((o as u64) << 32) | s as u64;
        for p in 0..nprocs {
            // Sort + dedup the union of both sides' packed keys, then map
            // each side's old slots to their rank in the sorted union. This
            // makes no ordering assumption about the inputs (`build` accepts
            // ghost sources in any slot order), and the merged schedule comes
            // out in the canonical owner-then-offset order.
            let mut union: Vec<u64> = self
                .ghost_sources(p)
                .chain(other.ghost_sources(p))
                .map(|(o, s)| key(o, s))
                .collect();
            union.sort_unstable();
            union.dedup();
            let slot_of = |o: u32, s: u32| union.binary_search(&key(o, s)).expect("present") as u32;
            map_a.push(self.ghost_sources(p).map(|(o, s)| slot_of(o, s)).collect());
            map_b.push(other.ghost_sources(p).map(|(o, s)| slot_of(o, s)).collect());
            for &k in &union {
                ghost_owner.push((k >> 32) as u32);
                ghost_src.push(k as u32);
            }
            ghost_off.push(ghost_owner.len() as u32);
        }

        // Rebuild the send side locally from the merged ghost sources (no
        // communication is charged; the layout pass is shared with
        // `from_csr_parts`).
        let merged = Self::from_ghost_arrays(nprocs, ghost_off, ghost_owner, ghost_src);
        (merged, map_a, map_b)
    }

    /// [`CommSchedule::merge`] without the ghost-slot remap tables — for
    /// callers that only need the union schedule (e.g. charging one merged
    /// request exchange for several groups) and would discard the maps.
    pub fn merge_union(&self, other: &CommSchedule) -> CommSchedule {
        assert_eq!(
            self.nprocs, other.nprocs,
            "cannot merge schedules built for different machine sizes"
        );
        let nprocs = self.nprocs;
        let mut ghost_off = Vec::with_capacity(nprocs + 1);
        let mut ghost_owner = Vec::with_capacity(self.ghost_owner.len() + other.ghost_owner.len());
        let mut ghost_src = Vec::with_capacity(ghost_owner.capacity());
        ghost_off.push(0u32);
        let key = |o: u32, s: u32| ((o as u64) << 32) | s as u64;
        for p in 0..nprocs {
            let mut union: Vec<u64> = self
                .ghost_sources(p)
                .chain(other.ghost_sources(p))
                .map(|(o, s)| key(o, s))
                .collect();
            union.sort_unstable();
            union.dedup();
            for &k in &union {
                ghost_owner.push((k >> 32) as u32);
                ghost_src.push(k as u32);
            }
            ghost_off.push(ghost_owner.len() as u32);
        }
        Self::from_ghost_arrays(nprocs, ghost_off, ghost_owner, ghost_src)
    }

    /// The part of this schedule not already covered by `resident`: a
    /// schedule containing exactly the `(owner, offset)` sources of `self`
    /// that `resident` does not hold, in `self`'s slot order.
    ///
    /// This is the incremental-schedule primitive: when a later loop's
    /// ghost set overlaps what earlier loops already fetched into a shared
    /// resident region, only the difference needs a request exchange and a
    /// per-sweep gather. Purely local — no communication is charged.
    pub fn difference(&self, resident: &CommSchedule) -> CommSchedule {
        assert_eq!(
            self.nprocs, resident.nprocs,
            "cannot difference schedules built for different machine sizes"
        );
        let nprocs = self.nprocs;
        let key = |o: u32, s: u32| ((o as u64) << 32) | s as u64;
        let mut ghost_off = Vec::with_capacity(nprocs + 1);
        let mut ghost_owner = Vec::new();
        let mut ghost_src = Vec::new();
        ghost_off.push(0u32);
        for p in 0..nprocs {
            // The resident side makes no ordering promise (a region is a
            // concatenation of per-bind chunks), so canonicalize it first.
            let mut held: Vec<u64> = resident.ghost_sources(p).map(|(o, s)| key(o, s)).collect();
            held.sort_unstable();
            for (o, s) in self.ghost_sources(p) {
                if held.binary_search(&key(o, s)).is_err() {
                    ghost_owner.push(o);
                    ghost_src.push(s);
                }
            }
            ghost_off.push(ghost_owner.len() as u32);
        }
        Self::from_ghost_arrays(nprocs, ghost_off, ghost_owner, ghost_src)
    }

    /// Grow this schedule (a resident union whose slot numbering must stay
    /// stable — earlier loops' bindings point into it) by the sources of
    /// `newer`: existing slots keep their numbers, and `newer`'s sources not
    /// yet present are appended per processor in canonical `(owner, offset)`
    /// order.
    ///
    /// Returns the grown union plus, per processor, the mapping from
    /// `newer`'s ghost-slot numbers to slots in the union — the re-binding
    /// table that lets the later loop's kernels read the shared resident
    /// ghost region. Purely local; no communication is charged.
    pub fn merge_incremental(&self, newer: &CommSchedule) -> (CommSchedule, Vec<Vec<u32>>) {
        assert_eq!(
            self.nprocs, newer.nprocs,
            "cannot merge schedules built for different machine sizes"
        );
        let nprocs = self.nprocs;
        let key = |o: u32, s: u32| ((o as u64) << 32) | s as u64;
        let mut ghost_off = Vec::with_capacity(nprocs + 1);
        let mut ghost_owner = Vec::new();
        let mut ghost_src = Vec::new();
        let mut map: Vec<Vec<u32>> = Vec::with_capacity(nprocs);
        ghost_off.push(0u32);
        for p in 0..nprocs {
            let base = self.ghost_count(p) as u32;
            // Sorted (key, resident slot) index over the resident side, which
            // itself stays in its original (append-only) order.
            let mut held: Vec<(u64, u32)> = self
                .ghost_sources(p)
                .enumerate()
                .map(|(slot, (o, s))| (key(o, s), slot as u32))
                .collect();
            held.sort_unstable();
            // The appended tail: newer's sources absent from the resident
            // side, in canonical order.
            let mut fresh: Vec<u64> = newer
                .ghost_sources(p)
                .map(|(o, s)| key(o, s))
                .filter(|k| held.binary_search_by_key(k, |&(k, _)| k).is_err())
                .collect();
            fresh.sort_unstable();
            fresh.dedup();
            map.push(
                newer
                    .ghost_sources(p)
                    .map(|(o, s)| {
                        let k = key(o, s);
                        match held.binary_search_by_key(&k, |&(k, _)| k) {
                            Ok(i) => held[i].1,
                            Err(_) => base + fresh.binary_search(&k).expect("appended") as u32,
                        }
                    })
                    .collect(),
            );
            for (o, s) in self.ghost_sources(p) {
                ghost_owner.push(o);
                ghost_src.push(s);
            }
            for &k in &fresh {
                ghost_owner.push((k >> 32) as u32);
                ghost_src.push(k as u32);
            }
            ghost_off.push(ghost_owner.len() as u32);
        }
        let merged = Self::from_ghost_arrays(nprocs, ghost_off, ghost_owner, ghost_src);
        (merged, map)
    }

    /// Construct the full CSR schedule from validated ghost-side arrays
    /// without charging any machine (used by [`CommSchedule::merge`]).
    fn from_ghost_arrays(
        nprocs: usize,
        ghost_off: Vec<u32>,
        ghost_owner: Vec<u32>,
        ghost_src: Vec<u32>,
    ) -> Self {
        let mut pair_counts = vec![0u32; nprocs * nprocs];
        for p in 0..nprocs {
            let (lo, hi) = (ghost_off[p] as usize, ghost_off[p + 1] as usize);
            for &owner in &ghost_owner[lo..hi] {
                pair_counts[owner as usize * nprocs + p] += 1;
            }
        }
        let nsends = pair_counts.iter().filter(|&&c| c > 0).count();
        let mut send_off = Vec::with_capacity(nprocs + 1);
        let mut send_to = Vec::with_capacity(nsends);
        let mut seg_off = Vec::with_capacity(nsends + 1);
        let mut seg_of_pair = vec![0u32; nprocs * nprocs];
        send_off.push(0u32);
        seg_off.push(0u32);
        let mut entries = 0u32;
        for owner in 0..nprocs {
            for requester in 0..nprocs {
                let c = pair_counts[owner * nprocs + requester];
                if c > 0 {
                    seg_of_pair[owner * nprocs + requester] = send_to.len() as u32 + 1;
                    send_to.push(requester as u32);
                    entries += c;
                    seg_off.push(entries);
                }
            }
            send_off.push(send_to.len() as u32);
        }
        let mut cursor: Vec<u32> = seg_off[..nsends].to_vec();
        let mut pack_src = vec![0u32; entries as usize];
        let mut pack_slot = vec![0u32; entries as usize];
        for p in 0..nprocs {
            let (lo, hi) = (ghost_off[p] as usize, ghost_off[p + 1] as usize);
            for slot in lo..hi {
                let owner = ghost_owner[slot] as usize;
                let seg = seg_of_pair[owner * nprocs + p] as usize - 1;
                let at = cursor[seg] as usize;
                pack_src[at] = ghost_src[slot];
                pack_slot[at] = (slot - lo) as u32;
                cursor[seg] += 1;
            }
        }
        CommSchedule {
            nprocs,
            ghost_off,
            ghost_owner,
            ghost_src,
            send_off,
            send_to,
            seg_off,
            pack_src,
            pack_slot,
        }
    }
}

/// Perform one folded request exchange covering several schedules at once —
/// the cross-distribution variant of schedule merging. Every `(owner,
/// requester)` pair that any of `parts` communicates over carries a single
/// message whose payload concatenates the per-part offset segments; when a
/// pair carries segments from two or more parts, each segment is prefixed
/// with one length-tag word so the owner can split the union back into
/// per-schedule send lists. With a single part the exchange is bit-identical
/// to [`CommSchedule::charge_build_exchange`].
///
/// Returns the `(messages, words)` actually charged, so callers can record
/// the saving against the per-part exchanges they replaced.
pub fn charge_merged_request_exchange(
    machine: &mut Machine,
    label: &str,
    parts: &[&CommSchedule],
) -> (usize, usize) {
    let nprocs = machine.nprocs();
    for part in parts {
        assert_eq!(part.nprocs, nprocs, "schedule/machine mismatch");
    }
    let mut plan: ExchangePlan<u32> = ExchangePlan::new(nprocs);
    let mut messages = 0usize;
    let mut words = 0usize;
    for owner in 0..nprocs {
        for requester in 0..nprocs {
            let mut segs: Vec<&[u32]> = Vec::new();
            for part in parts {
                for send in part.sends(owner) {
                    if send.to as usize == requester {
                        segs.push(send.offsets);
                    }
                }
            }
            if segs.is_empty() {
                continue;
            }
            let tagged = segs.len() >= 2;
            let mut payload: Vec<u32> =
                Vec::with_capacity(segs.iter().map(|s| s.len() + tagged as usize).sum());
            for seg in &segs {
                if tagged {
                    payload.push(seg.len() as u32);
                }
                payload.extend_from_slice(seg);
            }
            messages += 1;
            words += payload.len();
            plan.push(requester, owner, payload);
        }
    }
    machine.exchange(&format!("{label}:schedule-build"), plan);
    (messages, words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::MachineConfig;

    /// 2 procs; proc 0 needs elements at offsets 3 and 5 of proc 1, proc 1
    /// needs offset 0 of proc 0.
    fn simple_schedule(machine: &mut Machine) -> CommSchedule {
        CommSchedule::build(machine, "test", vec![vec![(1, 3), (1, 5)], vec![(0, 0)]])
    }

    #[test]
    fn build_produces_matching_send_lists() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let s = simple_schedule(&mut m);
        assert_eq!(s.nprocs(), 2);
        assert_eq!(s.ghost_count(0), 2);
        assert_eq!(s.ghost_count(1), 1);
        assert_eq!(s.total_ghosts(), 3);
        assert_eq!(s.message_count(), 2);
        assert_eq!(s.max_ghosts(), 2);

        let from1: Vec<_> = s.sends(1).collect();
        assert_eq!(from1.len(), 1);
        assert_eq!(from1[0].to, 0);
        assert_eq!(from1[0].offsets, &[3, 5]);
        assert_eq!(from1[0].ghost_slots, &[0, 1]);

        let from0: Vec<_> = s.sends(0).collect();
        assert_eq!(from0[0].to, 1);
        assert_eq!(from0[0].offsets, &[0]);
    }

    #[test]
    fn build_charges_request_exchange() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let _ = simple_schedule(&mut m);
        let t = m.stats().grand_totals();
        assert_eq!(t.messages, 2);
        assert!(m.elapsed().max_seconds() > 0.0);
    }

    #[test]
    fn empty_schedule_is_free_of_messages() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let s = CommSchedule::build(&mut m, "empty", vec![Vec::new(); 4]);
        assert_eq!(s.total_ghosts(), 0);
        assert_eq!(s.message_count(), 0);
        assert_eq!(m.stats().grand_totals().messages, 0);
    }

    #[test]
    #[should_panic(expected = "references itself")]
    fn self_reference_rejected() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let _ = CommSchedule::build(&mut m, "bad", vec![vec![(0, 1)], Vec::new()]);
    }

    #[test]
    #[should_panic(expected = "one entry per processor")]
    fn wrong_shape_rejected() {
        let mut m = Machine::new(MachineConfig::unit(4));
        let _ = CommSchedule::build(&mut m, "bad", vec![Vec::new(); 2]);
    }

    #[test]
    fn merge_unions_ghosts_and_remaps_slots() {
        let mut m = Machine::new(MachineConfig::unit(2));
        // Loop A needs offsets 3 and 5 of proc 1; loop B needs 5 and 7.
        let a = CommSchedule::build(&mut m, "a", vec![vec![(1, 3), (1, 5)], vec![]]);
        let b = CommSchedule::build(&mut m, "b", vec![vec![(1, 5), (1, 7)], vec![(0, 2)]]);
        let messages_before = m.stats().grand_totals().messages;
        let (merged, map_a, map_b) = a.merge(&b);
        // Merging is local: no new messages were charged.
        assert_eq!(m.stats().grand_totals().messages, messages_before);
        // Union on proc 0: offsets 3, 5, 7 of proc 1 (deduplicated).
        assert_eq!(merged.ghost_count(0), 3);
        assert_eq!(merged.ghost_count(1), 1);
        assert_eq!(
            merged.ghost_sources(0).collect::<Vec<_>>(),
            vec![(1, 3), (1, 5), (1, 7)]
        );
        // Old slots still address the same elements in the merged schedule.
        let merged0: Vec<_> = merged.ghost_sources(0).collect();
        for (old_slot, (owner, off)) in a.ghost_sources(0).enumerate() {
            assert_eq!(merged0[map_a[0][old_slot] as usize], (owner, off));
        }
        for (old_slot, (owner, off)) in b.ghost_sources(0).enumerate() {
            assert_eq!(merged0[map_b[0][old_slot] as usize], (owner, off));
        }
        // One message per (owner, requester) pair with data: 1->0 and 0->1.
        assert_eq!(merged.message_count(), 2);
    }

    #[test]
    fn merged_schedule_gathers_the_union_correctly() {
        use crate::darray::DistArray;
        use crate::dist::Distribution;
        use crate::executor::gather;
        let mut m = Machine::new(MachineConfig::unit(2));
        let x = DistArray::from_global(
            "x",
            Distribution::block(8, 2),
            &(0..8).map(|i| i as f64 * 10.0).collect::<Vec<_>>(),
        );
        let a = CommSchedule::build(&mut m, "a", vec![vec![(1, 0)], vec![]]); // global 4
        let b = CommSchedule::build(&mut m, "b", vec![vec![(1, 2)], vec![(0, 1)]]); // globals 6, 1
        let (merged, map_a, map_b) = a.merge(&b);
        let ghosts = gather(&mut m, "merged", &merged, &x);
        assert_eq!(ghosts[0][map_a[0][0] as usize], 40.0);
        assert_eq!(ghosts[0][map_b[0][0] as usize], 60.0);
        assert_eq!(ghosts[1][map_b[1][0] as usize], 10.0);
    }

    #[test]
    fn merge_handles_unsorted_ghost_sources() {
        // `build` accepts ghost sources in any slot order; merge must not
        // assume sortedness (it canonicalizes via sort + dedup).
        let mut m = Machine::new(MachineConfig::unit(3));
        let a = CommSchedule::build(&mut m, "a", vec![vec![(2, 1), (1, 0)], vec![], vec![]]);
        let b = CommSchedule::build(&mut m, "b", vec![vec![(1, 0), (2, 5)], vec![], vec![]]);
        let (merged, map_a, map_b) = a.merge(&b);
        // Union deduplicates (1,0): three distinct sources remain.
        assert_eq!(merged.ghost_count(0), 3);
        assert_eq!(
            merged.ghost_sources(0).collect::<Vec<_>>(),
            vec![(1, 0), (2, 1), (2, 5)]
        );
        let merged0: Vec<_> = merged.ghost_sources(0).collect();
        for (old, (o, s)) in a.ghost_sources(0).enumerate() {
            assert_eq!(merged0[map_a[0][old] as usize], (o, s));
        }
        for (old, (o, s)) in b.ghost_sources(0).enumerate() {
            assert_eq!(merged0[map_b[0][old] as usize], (o, s));
        }
    }

    #[test]
    fn merge_union_equals_merge_without_the_maps() {
        let mut m = Machine::new(MachineConfig::unit(3));
        let a = CommSchedule::build(
            &mut m,
            "a",
            vec![vec![(2, 1), (1, 0)], vec![(0, 4)], vec![]],
        );
        let b = CommSchedule::build(
            &mut m,
            "b",
            vec![vec![(1, 0), (2, 5)], vec![], vec![(0, 2)]],
        );
        let (merged, _, _) = a.merge(&b);
        assert_eq!(a.merge_union(&b), merged);
    }

    #[test]
    #[should_panic(expected = "different machine sizes")]
    fn merge_rejects_mismatched_schedules() {
        let mut m2 = Machine::new(MachineConfig::unit(2));
        let mut m4 = Machine::new(MachineConfig::unit(4));
        let a = CommSchedule::build(&mut m2, "a", vec![Vec::new(); 2]);
        let b = CommSchedule::build(&mut m4, "b", vec![Vec::new(); 4]);
        let _ = a.merge(&b);
    }

    #[test]
    fn csr_parts_agree_with_nested_build() {
        // The flat constructor and the nested-Vec convenience wrapper must
        // produce identical schedules.
        let sources = vec![
            vec![(1u32, 3u32), (1, 5), (2, 0)],
            vec![(0, 0)],
            vec![(1, 1)],
        ];
        let mut m1 = Machine::new(MachineConfig::unit(3));
        let nested = CommSchedule::build(&mut m1, "n", sources.clone());
        let mut ghost_off = vec![0u32];
        let mut ghost_owner = Vec::new();
        let mut ghost_src = Vec::new();
        for row in &sources {
            for &(o, s) in row {
                ghost_owner.push(o);
                ghost_src.push(s);
            }
            ghost_off.push(ghost_owner.len() as u32);
        }
        let mut m2 = Machine::new(MachineConfig::unit(3));
        let flat = CommSchedule::from_csr_parts(&mut m2, "f", ghost_off, ghost_owner, ghost_src);
        assert_eq!(nested, flat);
        assert_eq!(
            m1.stats().grand_totals().messages,
            m2.stats().grand_totals().messages
        );
    }

    #[test]
    fn difference_keeps_only_uncovered_sources() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let resident = CommSchedule::build(&mut m, "a", vec![vec![(1, 3), (1, 5)], vec![(0, 0)]]);
        let later = CommSchedule::build(
            &mut m,
            "b",
            vec![vec![(1, 5), (1, 7)], vec![(0, 0), (0, 2)]],
        );
        let messages_before = m.stats().grand_totals().messages;
        let diff = later.difference(&resident);
        // Differencing is local: no new messages were charged.
        assert_eq!(m.stats().grand_totals().messages, messages_before);
        assert_eq!(diff.ghost_sources(0).collect::<Vec<_>>(), vec![(1, 7)]);
        assert_eq!(diff.ghost_sources(1).collect::<Vec<_>>(), vec![(0, 2)]);
        // The send side is rebuilt consistently for the kept subset.
        assert_eq!(diff.message_count(), 2);
        assert_eq!(diff.total_ghosts(), 2);
        // Nothing new → empty difference, zero messages.
        let nothing = resident.difference(&resident);
        assert_eq!(nothing.total_ghosts(), 0);
        assert_eq!(nothing.message_count(), 0);
        // Empty resident → the difference is the schedule itself.
        let empty = CommSchedule::build(&mut m, "e", vec![Vec::new(); 2]);
        assert_eq!(later.difference(&empty), later);
    }

    #[test]
    fn merge_incremental_preserves_resident_slots_and_appends() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let resident = CommSchedule::build(&mut m, "a", vec![vec![(1, 5), (1, 3)], vec![]]);
        let newer = CommSchedule::build(
            &mut m,
            "b",
            vec![vec![(1, 3), (1, 7), (1, 0)], vec![(0, 2)]],
        );
        let (merged, map) = resident.merge_incremental(&newer);
        // Resident slots keep their numbers (original, even unsorted, order);
        // newer-only sources are appended in canonical order.
        assert_eq!(
            merged.ghost_sources(0).collect::<Vec<_>>(),
            vec![(1, 5), (1, 3), (1, 0), (1, 7)]
        );
        assert_eq!(merged.ghost_sources(1).collect::<Vec<_>>(), vec![(0, 2)]);
        // The map sends each of newer's slots to the union slot holding the
        // same source.
        let merged0: Vec<_> = merged.ghost_sources(0).collect();
        for (slot, (o, s)) in newer.ghost_sources(0).enumerate() {
            assert_eq!(merged0[map[0][slot] as usize], (o, s));
        }
        assert_eq!(map[0], vec![1, 3, 2]);
        assert_eq!(map[1], vec![0]);
        // Re-merging the same schedule appends nothing and maps into the
        // existing slots.
        let (again, map2) = merged.merge_incremental(&newer);
        assert_eq!(again, merged);
        assert_eq!(map2, map);
    }

    #[test]
    fn merged_exchange_with_one_part_matches_charge_build_exchange() {
        let sources = vec![
            vec![(1u32, 3u32), (1, 5), (2, 0)],
            vec![(0, 0)],
            vec![(1, 1)],
        ];
        let mut m1 = Machine::new(MachineConfig::unit(3));
        let s1 = CommSchedule::build(&mut m1, "L", sources.clone());
        let mut m2 = Machine::new(MachineConfig::unit(3));
        let s2 = CommSchedule::from_csr_parts_local(
            3,
            {
                let mut off = vec![0u32];
                let mut n = 0;
                for row in &sources {
                    n += row.len() as u32;
                    off.push(n);
                }
                off
            },
            sources.iter().flatten().map(|&(o, _)| o).collect(),
            sources.iter().flatten().map(|&(_, s)| s).collect(),
        );
        let (messages, words) = charge_merged_request_exchange(&mut m2, "L", &[&s2]);
        assert_eq!(s1, s2);
        assert_eq!(messages, s1.message_count());
        assert_eq!(words, s1.total_ghosts());
        // Identical label, identical message order, identical payloads — the
        // solo fold is bit-for-bit the plain build exchange.
        assert_eq!(m1.stats().grand_totals(), m2.stats().grand_totals());
        assert_eq!(
            m1.elapsed().max_seconds().to_bits(),
            m2.elapsed().max_seconds().to_bits()
        );
    }

    #[test]
    fn merged_exchange_folds_pairs_and_tags_shared_ones() {
        let mut m = Machine::new(MachineConfig::unit(2));
        let a = CommSchedule::from_csr_parts_local(2, vec![0, 2, 2], vec![1, 1], vec![3, 5]);
        let b = CommSchedule::from_csr_parts_local(2, vec![0, 1, 2], vec![1, 0], vec![7, 0]);
        let (messages, words) = charge_merged_request_exchange(&mut m, "F", &[&a, &b]);
        // Pair (owner 1 → requester 0) is shared by both parts: one message,
        // tagged segments (1 length word each). Pair (0 → 1) only appears in
        // b: untagged. Separate exchanges would have cost 3 messages.
        assert_eq!(messages, 2);
        assert_eq!(words, (1 + 2) + (1 + 1) + 1);
        assert_eq!(m.stats().grand_totals().messages, 2);
        assert!(messages < a.message_count() + b.message_count());
    }
}
