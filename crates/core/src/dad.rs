//! Data access descriptors (DADs).
//!
//! Section 3 of the paper: *"A data access descriptor (DAD) for a
//! distributed array contains (among other things) the current distribution
//! type of the array and the size of the array."* The schedule-reuse
//! machinery compares the DAD an inspector saw last time with the array's
//! current DAD; any difference (size change, distribution kind change, or a
//! remap — which always produces a fresh irregular-distribution signature)
//! invalidates the saved inspector results.

use crate::dist::Distribution;
use serde::{Deserialize, Serialize};

/// Compact value identifying a DAD for equality comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DadSignature(pub u64);

/// A data access descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dad {
    /// Global size of the array.
    pub size: usize,
    /// Distribution kind name (`"BLOCK"`, `"CYCLIC"`, `"IRREGULAR"`).
    pub dist_kind: String,
    /// Distribution signature (see [`Distribution::signature`]).
    pub dist_signature: u64,
}

impl Dad {
    /// Build the DAD describing `dist`.
    pub fn of(dist: &Distribution) -> Self {
        Dad {
            size: dist.len(),
            dist_kind: dist.kind_name().to_string(),
            dist_signature: dist.signature(),
        }
    }

    /// The comparison signature. Two arrays aligned to the same distribution
    /// share a signature; a remapped array never shares one with its old
    /// self.
    pub fn signature(&self) -> DadSignature {
        // size is implied by the distribution signature for the regular
        // kinds and by the translation-table id for irregular ones, but we
        // fold it in anyway for defence in depth.
        DadSignature(self.dist_signature ^ ((self.size as u64).rotate_left(48)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    #[test]
    fn same_regular_distribution_same_dad() {
        let a = Dad::of(&Distribution::block(100, 4));
        let b = Dad::of(&Distribution::block(100, 4));
        assert_eq!(a, b);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn different_kind_or_size_different_dad() {
        let a = Dad::of(&Distribution::block(100, 4));
        let b = Dad::of(&Distribution::cyclic(100, 4));
        let c = Dad::of(&Distribution::block(101, 4));
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert_eq!(a.dist_kind, "BLOCK");
        assert_eq!(b.dist_kind, "CYCLIC");
    }

    #[test]
    fn remap_always_changes_irregular_dad() {
        let map = vec![0u32, 1, 0, 1];
        let a = Dad::of(&Distribution::irregular_from_map(&map, 2));
        let b = Dad::of(&Distribution::irregular_from_map(&map, 2));
        assert_ne!(
            a.signature(),
            b.signature(),
            "every irregular (re)mapping is a new DAD"
        );
    }

    #[test]
    fn cloned_distribution_keeps_its_dad() {
        let d = Distribution::irregular_from_map(&[0u32, 1], 2);
        let a = Dad::of(&d);
        let b = Dad::of(&d.clone());
        assert_eq!(a.signature(), b.signature());
    }
}
