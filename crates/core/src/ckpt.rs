//! Checkpoint cost accounting for epoch checkpoint/rollback.
//!
//! A checkpoint copies the dirty shards of the program's distributed arrays
//! plus the machine's clocks and statistics. The copy itself is exact (plain
//! `clone_from` of the shard `Vec`s — see
//! [`crate::darray::DistArray::copy_values_from`]); this module charges its
//! *modeled* cost to the virtual clocks the same way the mapper coupler
//! charges a partitioner run: the per-rank shard scans are charged
//! rank-parallel through the [`Backend`], their total is **deducted** from
//! the lump-sum [`checkpoint_cost_estimate`], and only the non-negative
//! residual (bookkeeping that does not scale with the shard sizes) is
//! charged to every processor. The scan work is therefore never counted
//! twice — the exact analogue of how `MapperCoupler::partition` deducts
//! `RankScans` charges from the partitioner's `cost_estimate`.

use chaos_dmsim::Backend;

/// Modeled compute units per word scanned while copying a shard into (or out
/// of) a checkpoint. A copy is cheaper than a partitioner pass over the same
/// words: one read and one write per word, no arithmetic.
pub const CKPT_OPS_PER_WORD: f64 = 0.5;

/// Fixed per-checkpoint bookkeeping (clock/statistics snapshot, dirty-set
/// bookkeeping) in compute units, independent of the shard sizes.
pub const CKPT_BASE_OPS: f64 = 64.0;

/// Lump-sum estimate of one checkpoint (or restore) of `words` total words
/// across all ranks: the per-word scan cost plus the fixed bookkeeping.
pub fn checkpoint_cost_estimate(words: usize) -> f64 {
    CKPT_BASE_OPS + CKPT_OPS_PER_WORD * words as f64
}

/// Charge one checkpoint (or restore) of `rank_words[p]` words on each rank
/// `p` to the backend's clocks.
///
/// Each rank's shard scan is charged to that rank's own clock through a
/// rank-parallel compute region, and what those scans charged in total is
/// deducted from [`checkpoint_cost_estimate`] before the residual is divided
/// across the processors — so the scan cost appears on the clocks exactly
/// once, regardless of the engine. Returns the compute units charged per
/// rank by the scan region (excluding the residual).
///
/// # Panics
/// Panics if `rank_words.len()` differs from the backend's rank count.
pub fn charge_checkpoint<B: Backend + ?Sized>(backend: &mut B, rank_words: &[usize]) -> f64 {
    let nprocs = backend.nprocs();
    assert_eq!(
        rank_words.len(),
        nprocs,
        "charge_checkpoint: one word count per rank"
    );
    let total: usize = rank_words.iter().sum();

    // Rank-parallel scan charge: each rank pays for copying its own shards.
    backend.run_charges(|ctx| {
        let rank = ctx.rank();
        ctx.charge_compute(rank, CKPT_OPS_PER_WORD * rank_words[rank] as f64);
    });

    // Deduct what the scans charged from the lump-sum estimate; only the
    // residual bookkeeping is charged to every processor.
    let charged = CKPT_OPS_PER_WORD * total as f64;
    let residual = ((checkpoint_cost_estimate(total) - charged) / nprocs as f64).max(0.0);
    backend.machine_mut().charge_compute_all(residual);
    charged
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_dmsim::{Machine, MachineConfig};

    #[test]
    fn scan_charges_are_deducted_not_double_charged() {
        // Unit cost model: 1 compute unit = 1 second, so the clocks read the
        // charged units directly.
        let mut machine = Machine::new(MachineConfig::unit(4));
        let rank_words = [100, 200, 300, 400];
        charge_checkpoint(&mut machine, &rank_words);

        let elapsed = machine.elapsed();
        let total_words: usize = rank_words.iter().sum();
        let estimate = checkpoint_cost_estimate(total_words);
        let scan_total = CKPT_OPS_PER_WORD * total_words as f64;
        let residual_each = (estimate - scan_total) / 4.0;

        // Every rank paid its own scan plus an equal share of the residual —
        // and nothing else. Summed over ranks that is exactly the estimate,
        // not estimate + scan (which is what double-charging would produce).
        let mut summed = 0.0;
        for (p, &w) in rank_words.iter().enumerate() {
            let expected = CKPT_OPS_PER_WORD * w as f64 + residual_each;
            assert_eq!(elapsed.per_proc[p].to_bits(), expected.to_bits());
            summed += elapsed.per_proc[p];
        }
        assert!((summed - estimate).abs() < 1e-9);
    }

    #[test]
    fn residual_is_size_independent_bookkeeping() {
        // The estimate's per-word term matches the scans exactly, so after
        // the deduction only the fixed bookkeeping remains — whatever the
        // checkpoint size.
        for words in [0usize, 10, 1_000_000] {
            let mut machine = Machine::new(MachineConfig::unit(2));
            let rank_words = [words, words];
            let charged = charge_checkpoint(&mut machine, &rank_words);
            assert_eq!(charged, CKPT_OPS_PER_WORD * (2 * words) as f64);
            let elapsed = machine.elapsed();
            let expected = CKPT_OPS_PER_WORD * words as f64 + CKPT_BASE_OPS / 2.0;
            assert_eq!(elapsed.per_proc[0].to_bits(), expected.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "one word count per rank")]
    fn rank_words_must_match_the_machine() {
        let mut machine = Machine::new(MachineConfig::unit(4));
        charge_checkpoint(&mut machine, &[1, 2]);
    }
}
