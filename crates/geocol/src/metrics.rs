//! Partition quality metrics: edge cut, load imbalance, boundary size and
//! estimated communication volume.
//!
//! These are the quantities that explain the executor-time differences in
//! Tables 2 and 4 of the paper: a partitioning with a smaller edge cut needs
//! fewer off-processor data copies per executor iteration.

use crate::geocol::GeoCoL;
use crate::partition::Partitioning;
use serde::{Deserialize, Serialize};

/// Quality summary for a partitioning of a GeoCoL graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionQuality {
    /// Number of graph edges whose endpoints live on different parts.
    pub edge_cut: usize,
    /// Total number of graph edges.
    pub total_edges: usize,
    /// Maximum part load divided by average part load (1.0 = perfect).
    pub load_imbalance: f64,
    /// Number of vertices with at least one off-part neighbour.
    pub boundary_vertices: usize,
    /// Total communication volume: for every part, the number of distinct
    /// off-part vertices adjacent to it (the size of its ghost region),
    /// summed over parts.
    pub comm_volume: usize,
    /// Per-part vertex counts.
    pub part_sizes: Vec<usize>,
}

impl PartitionQuality {
    /// Fraction of edges cut (0.0 when the graph has no edges).
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.edge_cut as f64 / self.total_edges as f64
        }
    }

    /// Evaluate a partitioning against its GeoCoL graph.
    ///
    /// # Panics
    /// Panics if the partitioning has a different number of vertices than the
    /// graph.
    pub fn evaluate(geocol: &GeoCoL, partitioning: &Partitioning) -> Self {
        assert_eq!(
            geocol.nvertices(),
            partitioning.len(),
            "partitioning and GeoCoL vertex counts differ"
        );
        let nparts = partitioning.nparts();

        let mut edge_cut = 0usize;
        for &(a, b) in geocol.edges() {
            if partitioning.owner(a as usize) != partitioning.owner(b as usize) {
                edge_cut += 1;
            }
        }

        let mut boundary_vertices = 0usize;
        for v in 0..geocol.nvertices() {
            let owner = partitioning.owner(v);
            if geocol
                .neighbors(v)
                .iter()
                .any(|&n| partitioning.owner(n as usize) != owner)
            {
                boundary_vertices += 1;
            }
        }

        // Ghost-region sizes: for each part, the set of off-part vertices it
        // references. Use a stamped visited array to avoid a HashSet per part.
        let mut comm_volume = 0usize;
        let mut stamp = vec![usize::MAX; geocol.nvertices()];
        for part in 0..nparts {
            for v in 0..geocol.nvertices() {
                if partitioning.owner(v) != part {
                    continue;
                }
                for &n in geocol.neighbors(v) {
                    let n = n as usize;
                    if partitioning.owner(n) != part && stamp[n] != part {
                        stamp[n] = part;
                        comm_volume += 1;
                    }
                }
            }
        }

        let loads = partitioning.part_loads(geocol);
        let total: f64 = loads.iter().sum();
        let mean = if nparts > 0 {
            total / nparts as f64
        } else {
            0.0
        };
        let max = loads.iter().copied().fold(0.0, f64::max);
        let load_imbalance = if mean > 0.0 { max / mean } else { 1.0 };

        PartitionQuality {
            edge_cut,
            total_edges: geocol.nedges(),
            load_imbalance,
            boundary_vertices,
            comm_volume,
            part_sizes: partitioning.part_sizes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;

    /// A 2x4 grid graph:
    /// 0-1-2-3
    /// | | | |
    /// 4-5-6-7
    fn grid() -> GeoCoL {
        GeoColBuilder::new(8)
            .link(
                vec![0, 1, 2, 4, 5, 6, 0, 1, 2, 3],
                vec![1, 2, 3, 5, 6, 7, 4, 5, 6, 7],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_split_of_grid() {
        let g = grid();
        // Left half {0,1,4,5} vs right half {2,3,6,7}: cuts edges 1-2 and 5-6.
        let p = Partitioning::new(vec![0, 0, 1, 1, 0, 0, 1, 1], 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(q.edge_cut, 2);
        assert_eq!(q.total_edges, 10);
        assert_eq!(q.load_imbalance, 1.0);
        assert_eq!(q.boundary_vertices, 4); // 1,5,2,6
        assert_eq!(q.comm_volume, 4); // each part references 2 ghosts
        assert!((q.cut_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(q.part_sizes, vec![4, 4]);
    }

    #[test]
    fn stripe_split_is_worse() {
        let g = grid();
        // Alternate columns: every horizontal edge is cut.
        let p = Partitioning::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(q.edge_cut, 6);
        assert_eq!(q.boundary_vertices, 8);
        assert!(q.comm_volume > 4);
    }

    #[test]
    fn imbalance_detected() {
        let g = grid();
        let p = Partitioning::new(vec![0, 0, 0, 0, 0, 0, 0, 1], 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert!((q.load_imbalance - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_part_has_no_cut() {
        let g = grid();
        let p = Partitioning::new(vec![0; 8], 1);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.boundary_vertices, 0);
        assert_eq!(q.comm_volume, 0);
        assert_eq!(q.load_imbalance, 1.0);
    }

    #[test]
    fn edgeless_graph_cut_fraction_zero() {
        let g = GeoColBuilder::new(4).load(vec![1.0; 4]).build().unwrap();
        let p = Partitioning::new(vec![0, 1, 0, 1], 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(q.cut_fraction(), 0.0);
        assert_eq!(q.comm_volume, 0);
    }
}
