//! Kernighan–Lin / Fiduccia–Mattheyses-style refinement of an existing
//! partitioning.
//!
//! The paper's partitioner bibliography includes Kernighan & Lin's heuristic
//! (reference \[15\]); production mesh partitioners of the period (and METIS
//! later) run a KL/FM refinement pass after every bisection. This module
//! provides that pass as a standalone operation ([`refine`]) and as a
//! wrapper partitioner ([`KlRefinedPartitioner`]) so any base partitioner
//! from the library can be combined with boundary refinement — an ablation
//! the `partitioners` bench exercises.
//!
//! The implementation is the multi-way FM variant: repeatedly move the
//! boundary vertex with the highest cut-reduction *gain* to its best
//! neighbouring part, subject to a load-balance tolerance, locking each
//! vertex after it moves; keep the best configuration seen during the pass;
//! stop after a bounded number of passes or when a pass yields no
//! improvement.

use crate::geocol::GeoCoL;
use crate::metrics::PartitionQuality;
use crate::partition::{Partitioner, Partitioning};

/// Options controlling the refinement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlOptions {
    /// Maximum number of full passes over the boundary.
    pub max_passes: usize,
    /// Maximum allowed load imbalance (max part load / average part load)
    /// after any accepted move.
    pub balance_tolerance: f64,
    /// Upper bound on moves per pass, as a fraction of the vertex count
    /// (1.0 = every vertex may move once per pass).
    pub move_fraction: f64,
}

impl Default for KlOptions {
    fn default() -> Self {
        KlOptions {
            max_passes: 4,
            balance_tolerance: 1.05,
            move_fraction: 0.25,
        }
    }
}

/// Refine `partitioning` in place-style (a new partitioning is returned) by
/// gain-based boundary moves. The result never has a worse edge cut than the
/// input and respects the balance tolerance relative to the *input*'s
/// average load.
pub fn refine(geocol: &GeoCoL, partitioning: &Partitioning, options: KlOptions) -> Partitioning {
    let n = geocol.nvertices();
    let nparts = partitioning.nparts();
    if n == 0 || nparts < 2 || !geocol.has_connectivity() {
        return partitioning.clone();
    }

    let mut owners: Vec<u32> = partitioning.owners().to_vec();
    let mut part_loads = partitioning.part_loads(geocol);
    let total_load: f64 = part_loads.iter().sum();
    let mean_load = total_load / nparts as f64;
    let max_load = mean_load * options.balance_tolerance;

    let mut best_owners = owners.clone();
    let mut best_cut = edge_cut(geocol, &owners);
    let max_moves_per_pass = ((n as f64 * options.move_fraction) as usize).max(1);

    for _pass in 0..options.max_passes {
        let mut locked = vec![false; n];
        let mut improved_this_pass = false;
        let mut current_cut = edge_cut(geocol, &owners);

        for _move in 0..max_moves_per_pass {
            // Find the unlocked boundary vertex with the best admissible gain.
            let mut best: Option<(usize, usize, i64)> = None; // (vertex, dest, gain)
            for v in 0..n {
                if locked[v] {
                    continue;
                }
                let home = owners[v] as usize;
                // Count neighbour parts.
                let mut counts = vec![0i64; nparts];
                let mut is_boundary = false;
                for &u in geocol.neighbors(v) {
                    let pu = owners[u as usize] as usize;
                    counts[pu] += 1;
                    if pu != home {
                        is_boundary = true;
                    }
                }
                if !is_boundary {
                    continue;
                }
                let load_v = geocol.vertex_load(v);
                for (dest, &cnt) in counts.iter().enumerate() {
                    if dest == home {
                        continue;
                    }
                    if part_loads[dest] + load_v > max_load {
                        continue;
                    }
                    // Moving v from home to dest changes the cut by
                    // (edges to home) - (edges to dest).
                    let gain = cnt - counts[home];
                    match best {
                        Some((_, _, g)) if g >= gain => {}
                        _ => best = Some((v, dest, gain)),
                    }
                }
            }
            let Some((v, dest, gain)) = best else { break };
            if gain < 0 {
                // Classic KL allows temporarily negative moves; a single
                // negative step rarely pays off for the mesh-like graphs here
                // and keeping the invariant "never worse than input" simple
                // is more valuable, so stop the pass instead.
                break;
            }
            let home = owners[v] as usize;
            let load_v = geocol.vertex_load(v);
            owners[v] = dest as u32;
            part_loads[home] -= load_v;
            part_loads[dest] += load_v;
            locked[v] = true;
            current_cut = (current_cut as i64 - gain) as usize;
            if current_cut < best_cut {
                best_cut = current_cut;
                best_owners.copy_from_slice(&owners);
                improved_this_pass = true;
            }
        }

        // Restart the next pass from the best configuration found so far.
        owners.copy_from_slice(&best_owners);
        part_loads = Partitioning::new(owners.clone(), nparts).part_loads(geocol);
        if !improved_this_pass {
            break;
        }
    }

    Partitioning::new(best_owners, nparts)
}

fn edge_cut(geocol: &GeoCoL, owners: &[u32]) -> usize {
    geocol
        .edges()
        .iter()
        .filter(|&&(a, b)| owners[a as usize] != owners[b as usize])
        .count()
}

/// A partitioner that runs a base partitioner and then a KL/FM refinement
/// pass over its output.
#[derive(Debug, Clone)]
pub struct KlRefinedPartitioner<P> {
    /// The partitioner producing the initial assignment.
    pub base: P,
    /// Refinement options.
    pub options: KlOptions,
}

impl<P: Partitioner> KlRefinedPartitioner<P> {
    /// Wrap `base` with default refinement options.
    pub fn new(base: P) -> Self {
        KlRefinedPartitioner {
            base,
            options: KlOptions::default(),
        }
    }
}

impl<P: Partitioner> Partitioner for KlRefinedPartitioner<P> {
    fn name(&self) -> &'static str {
        // A static name is required by the trait; the wrapper reports the
        // refinement, the base's identity is visible through its cost and
        // behaviour (and through the registry aliases such as "RSB-KL").
        "KL-REFINED"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        let initial = self.base.partition(geocol, nparts);
        refine(geocol, &initial, self.options)
    }

    /// Forward the scans to the base partitioner — `RSB-KL`/`RCB-KL` run
    /// the base's rank-parallel passes like the unwrapped partitioner
    /// would; only the refinement pass itself stays driver-side (its cost
    /// is the `refine_cost` share of [`Partitioner::cost_estimate`]).
    fn partition_with_scans(
        &self,
        geocol: &GeoCoL,
        nparts: usize,
        scans: &mut dyn crate::partition::RankScans,
    ) -> Partitioning {
        let initial = self.base.partition_with_scans(geocol, nparts, scans);
        refine(geocol, &initial, self.options)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Refinement: each pass scans boundary vertices and their edges.
        let refine_cost = self.options.max_passes as f64
            * (geocol.nvertices() as f64 + 2.0 * geocol.nedges() as f64);
        self.base.cost_estimate(geocol, nparts) + refine_cost
    }
}

/// Quality report helper used by benches: evaluate a partitioning before and
/// after refinement and return `(before, after)`.
pub fn refinement_effect(
    geocol: &GeoCoL,
    partitioning: &Partitioning,
    options: KlOptions,
) -> (PartitionQuality, PartitionQuality) {
    let before = PartitionQuality::evaluate(geocol, partitioning);
    let after = PartitionQuality::evaluate(geocol, &refine(geocol, partitioning, options));
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockPartitioner;
    use crate::geocol::GeoColBuilder;
    use crate::rcb::RcbPartitioner;

    /// 2-D grid with vertices shuffled so BLOCK produces a terrible cut.
    fn shuffled_grid(side: usize) -> GeoCoL {
        let n = side * side;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = 41u64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                xs[perm[v]] = c as f64;
                ys[perm[v]] = r as f64;
                if c + 1 < side {
                    e1.push(perm[v] as u32);
                    e2.push(perm[v + 1] as u32);
                }
                if r + 1 < side {
                    e1.push(perm[v] as u32);
                    e2.push(perm[v + side] as u32);
                }
            }
        }
        GeoColBuilder::new(n)
            .geometry(vec![xs, ys])
            .link(e1, e2)
            .build()
            .unwrap()
    }

    #[test]
    fn refinement_never_worsens_the_cut() {
        let g = shuffled_grid(12);
        for nparts in [2, 4, 7] {
            let initial = BlockPartitioner.partition(&g, nparts);
            let (before, after) = refinement_effect(&g, &initial, KlOptions::default());
            assert!(
                after.edge_cut <= before.edge_cut,
                "nparts={nparts}: cut went from {} to {}",
                before.edge_cut,
                after.edge_cut
            );
            assert!(after.load_imbalance <= KlOptions::default().balance_tolerance + 1e-9);
        }
    }

    #[test]
    fn refinement_substantially_improves_a_bad_partitioning() {
        let g = shuffled_grid(14);
        let initial = BlockPartitioner.partition(&g, 4);
        let before = PartitionQuality::evaluate(&g, &initial).edge_cut;
        let refined = refine(
            &g,
            &initial,
            KlOptions {
                max_passes: 8,
                move_fraction: 1.0,
                ..Default::default()
            },
        );
        let after = PartitionQuality::evaluate(&g, &refined).edge_cut;
        assert!(
            (after as f64) < 0.8 * before as f64,
            "expected a >20% cut reduction, got {before} -> {after}"
        );
    }

    #[test]
    fn refinement_preserves_vertex_coverage() {
        let g = shuffled_grid(10);
        let refined = KlRefinedPartitioner::new(BlockPartitioner).partition(&g, 4);
        assert_eq!(refined.len(), g.nvertices());
        assert_eq!(refined.part_sizes().iter().sum::<usize>(), g.nvertices());
    }

    #[test]
    fn refining_a_good_partitioning_is_a_cheap_no_op_or_better() {
        let g = shuffled_grid(12);
        let initial = RcbPartitioner.partition(&g, 4);
        let (before, after) = refinement_effect(&g, &initial, KlOptions::default());
        assert!(after.edge_cut <= before.edge_cut);
    }

    #[test]
    fn wrapper_cost_includes_base_and_refinement() {
        let g = shuffled_grid(8);
        let wrapped = KlRefinedPartitioner::new(RcbPartitioner);
        assert!(wrapped.cost_estimate(&g, 4) > RcbPartitioner.cost_estimate(&g, 4));
        assert_eq!(wrapped.name(), "KL-REFINED");
    }

    #[test]
    fn wrapper_forwards_scans_to_the_base_partitioner() {
        // RSB-KL must run the base's rank-parallel scans: chunking them
        // over any rank count cannot change a bit of the result (the
        // refinement pass is driver-side and deterministic either way).
        use crate::partition::SerialScans;
        use crate::rsb::RsbPartitioner;
        let g = shuffled_grid(10);
        let wrapped = KlRefinedPartitioner::new(RsbPartitioner {
            power_iterations: 30,
            ..Default::default()
        });
        let serial = wrapped.partition(&g, 4);
        for nranks in [3, 8] {
            let chunked = wrapped.partition_with_scans(&g, 4, &mut SerialScans { nranks });
            assert_eq!(serial, chunked, "nranks={nranks}");
        }
    }

    #[test]
    fn degenerate_inputs_are_returned_unchanged() {
        let g = GeoColBuilder::new(4).load(vec![1.0; 4]).build().unwrap(); // no edges
        let p = Partitioning::new(vec![0, 1, 0, 1], 2);
        assert_eq!(refine(&g, &p, KlOptions::default()), p);
        let single = Partitioning::new(vec![0; 4], 1);
        assert_eq!(refine(&g, &single, KlOptions::default()), single);
    }
}
