//! Recursive inertial bisection: like coordinate bisection, but each split is
//! made perpendicular to the principal axis of the vertex point cloud rather
//! than a coordinate axis. The paper cites this family of geometric
//! partitioners (Nour-Omid et al.) as one of the options a user can couple
//! through the GeoCoL interface.
//!
//! # Rank-parallel structure
//!
//! The two O(n·dim) accumulation passes behind every principal-axis
//! computation — total load + load-weighted coordinate sums, then the
//! covariance moments (the partitioner's "moment scans") — run through the
//! [`RankScans`] executor as [`block_scan`] fixed-size-block partial sums,
//! folded driver-side in ascending block order; the tiny `dim × dim` power
//! iteration and the projection sort stay driver-side. Because the block
//! boundaries are independent of the rank count, the partitioning from the
//! pure [`Partitioner::partition`] entry point is bit-identical to every
//! backend-driven [`Partitioner::partition_with_scans`] run, on every
//! engine.
//!
//! # Charge model
//!
//! Scan-routed moment work is charged per rank by the runtime's
//! `Backend`-backed executor and deducted from
//! [`Partitioner::cost_estimate`]'s lump sum (accumulation + power
//! iteration + sort per level), so it is never double-charged.

use crate::geocol::GeoCoL;
use crate::partition::{block_scan, Partitioner, Partitioning, RankScans, SerialScans};

/// Recursive inertial bisection partitioner.
#[derive(Debug, Clone, Copy)]
pub struct InertialPartitioner {
    /// Number of power-iteration steps used to find the principal axis.
    pub power_iterations: usize,
}

impl Default for InertialPartitioner {
    fn default() -> Self {
        InertialPartitioner {
            power_iterations: 32,
        }
    }
}

impl Partitioner for InertialPartitioner {
    fn name(&self) -> &'static str {
        "INERTIAL"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        // Single-chunk scans degenerate to the classic sequential folds.
        self.partition_with_scans(geocol, nparts, &mut SerialScans::single())
    }

    /// The rank-parallel entry point: the mean and covariance accumulations
    /// behind every principal-axis computation (the partitioner's "moment
    /// scans") run as fixed-size-block partial sums through `scans` — the
    /// blocks chunked over the ranks, combined in ascending block order —
    /// so the runtime can execute them through `Backend::run_compute` while
    /// the partitioning stays bit-identical to [`Partitioner::partition`]
    /// for every rank count and engine.
    fn partition_with_scans(
        &self,
        geocol: &GeoCoL,
        nparts: usize,
        scans: &mut dyn RankScans,
    ) -> Partitioning {
        assert!(
            geocol.has_geometry(),
            "inertial bisection requires a GEOMETRY section in the GeoCoL structure"
        );
        let n = geocol.nvertices();
        let mut owners = vec![0u32; n];
        if n == 0 || nparts == 1 {
            return Partitioning::new(owners, nparts);
        }
        let mut vertices: Vec<u32> = (0..n as u32).collect();
        self.bisect(geocol, &mut vertices, 0, nparts, &mut owners, scans);
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        let n = geocol.nvertices().max(2) as f64;
        let levels = (nparts.max(2) as f64).log2().ceil();
        // Covariance accumulation + power iteration + sort per level.
        (n * (self.power_iterations as f64 + geocol.geometry_dim() as f64) + n * n.log2()) * levels
    }
}

impl InertialPartitioner {
    fn bisect(
        &self,
        geocol: &GeoCoL,
        vertices: &mut [u32],
        part_lo: usize,
        nparts: usize,
        owners: &mut [u32],
        scans: &mut dyn RankScans,
    ) {
        if nparts <= 1 || vertices.len() <= 1 {
            for &v in vertices.iter() {
                owners[v as usize] = part_lo as u32;
            }
            return;
        }

        let axis = principal_axis(geocol, vertices, self.power_iterations, scans);
        // Project each vertex onto the principal axis and sort by projection.
        vertices.sort_unstable_by(|&a, &b| {
            let pa = project(geocol, a as usize, &axis);
            let pb = project(geocol, b as usize, &axis);
            pa.partial_cmp(&pb).unwrap().then(a.cmp(&b))
        });

        let left_parts = nparts / 2;
        let right_parts = nparts - left_parts;
        let total_load: f64 = vertices
            .iter()
            .map(|&v| geocol.vertex_load(v as usize))
            .sum();
        let target_left = total_load * left_parts as f64 / nparts as f64;
        let mut acc = 0.0;
        let mut split = 0usize;
        for (i, &v) in vertices.iter().enumerate() {
            acc += geocol.vertex_load(v as usize);
            split = i + 1;
            if acc >= target_left {
                break;
            }
        }
        split = split.clamp(1, vertices.len() - 1);

        let (left, right) = vertices.split_at_mut(split);
        self.bisect(geocol, left, part_lo, left_parts, owners, scans);
        self.bisect(
            geocol,
            right,
            part_lo + left_parts,
            right_parts,
            owners,
            scans,
        );
    }
}

/// Projection of a vertex's (load-weighted, mean-centred in the caller's
/// covariance) coordinates onto a direction vector.
fn project(geocol: &GeoCoL, vertex: usize, direction: &[f64]) -> f64 {
    direction
        .iter()
        .enumerate()
        .map(|(axis, &d)| geocol.coord(axis, vertex) * d)
        .sum()
}

/// Dominant eigenvector of the (load-weighted) coordinate covariance matrix,
/// found by power iteration. Falls back to the first coordinate axis for
/// degenerate point clouds.
///
/// The two O(n·dim) accumulation passes — total load + load-weighted
/// coordinate sums, then the covariance moments — run as fixed-size-block
/// partial sums through `scans` ([`block_scan`]); the partials are combined
/// in ascending block order (making the result independent of the rank
/// count, not just the engine) and the tiny `dim × dim` power iteration
/// stays driver-side.
fn principal_axis(
    geocol: &GeoCoL,
    vertices: &[u32],
    iterations: usize,
    scans: &mut dyn RankScans,
) -> Vec<f64> {
    let dim = geocol.geometry_dim();

    // Moment scan 1: [total load, load-weighted coordinate sums].
    let width = 1 + dim;
    let blocks = block_scan(
        scans,
        vertices.len(),
        width,
        (1 + dim) as f64,
        &|items, acc: &mut [f64]| {
            for &v in &vertices[items] {
                let w = geocol.vertex_load(v as usize);
                acc[0] += w;
                for axis in 0..dim {
                    acc[1 + axis] += w * geocol.coord(axis, v as usize);
                }
            }
        },
    );
    let mut total_load = 0.0;
    let mut mean = vec![0.0; dim];
    for acc in blocks.chunks_exact(width) {
        total_load += acc[0];
        for (axis, m) in mean.iter_mut().enumerate() {
            *m += acc[1 + axis];
        }
    }
    if total_load > 0.0 {
        for m in &mut mean {
            *m /= total_load;
        }
    }

    // Moment scan 2: the covariance matrix (dim x dim, dim is 1..3 in
    // practice), mean-centred using the first scan's result.
    let cov_width = dim * dim;
    let mean_ref = &mean;
    let cov_blocks = block_scan(
        scans,
        vertices.len(),
        cov_width,
        (dim * dim) as f64,
        &|items, acc: &mut [f64]| {
            for &v in &vertices[items] {
                let w = geocol.vertex_load(v as usize);
                for i in 0..dim {
                    let di = geocol.coord(i, v as usize) - mean_ref[i];
                    for j in 0..dim {
                        let dj = geocol.coord(j, v as usize) - mean_ref[j];
                        acc[i * dim + j] += w * di * dj;
                    }
                }
            }
        },
    );
    let mut cov = vec![vec![0.0; dim]; dim];
    for acc in cov_blocks.chunks_exact(cov_width) {
        for i in 0..dim {
            for j in 0..dim {
                cov[i][j] += acc[i * dim + j];
            }
        }
    }

    let mut vec_ = vec![0.0; dim];
    // Deterministic, slightly asymmetric starting vector.
    for (i, x) in vec_.iter_mut().enumerate() {
        *x = 1.0 + 0.1 * i as f64;
    }
    for _ in 0..iterations {
        let mut next = vec![0.0; dim];
        for i in 0..dim {
            for j in 0..dim {
                next[i] += cov[i][j] * vec_[j];
            }
        }
        let norm: f64 = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-30 {
            // Degenerate cloud: all points coincide. Use the x axis.
            let mut fallback = vec![0.0; dim];
            fallback[0] = 1.0;
            return fallback;
        }
        for x in &mut next {
            *x /= norm;
        }
        vec_ = next;
    }
    vec_
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;
    use crate::metrics::PartitionQuality;

    /// A long thin diagonal strip of points: the principal axis is the
    /// diagonal, so inertial bisection should split it crosswise while plain
    /// coordinate bisection along x or y would produce the same cut only by
    /// luck.
    fn diagonal_strip(n: usize) -> GeoCoL {
        let mut xs = Vec::with_capacity(2 * n);
        let mut ys = Vec::with_capacity(2 * n);
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for i in 0..n {
            // Two rows of points along the diagonal y = x.
            xs.push(i as f64);
            ys.push(i as f64);
            xs.push(i as f64 + 0.3);
            ys.push(i as f64 - 0.3);
            let a = (2 * i) as u32;
            let b = (2 * i + 1) as u32;
            e1.push(a);
            e2.push(b);
            if i + 1 < n {
                e1.push(a);
                e2.push(a + 2);
                e1.push(b);
                e2.push(b + 2);
            }
        }
        GeoColBuilder::new(2 * n)
            .geometry(vec![xs, ys])
            .link(e1, e2)
            .build()
            .unwrap()
    }

    #[test]
    fn inertial_splits_along_the_diagonal() {
        let g = diagonal_strip(64);
        let p = InertialPartitioner::default().partition(&g, 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert!(q.load_imbalance <= 1.05);
        // Cutting across the strip severs at most a handful of edges (the
        // strip is 2 vertices wide), far fewer than cutting along it.
        assert!(q.edge_cut <= 4, "edge cut {}", q.edge_cut);
    }

    #[test]
    fn inertial_balances_multiway() {
        let g = diagonal_strip(64);
        for nparts in [4, 8, 5] {
            let p = InertialPartitioner::default().partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert!(
                q.load_imbalance <= 1.25,
                "nparts={nparts}: {}",
                q.load_imbalance
            );
            assert_eq!(p.part_sizes().iter().sum::<usize>(), g.nvertices());
        }
    }

    #[test]
    fn degenerate_cloud_does_not_panic() {
        // All points coincide; any balanced split is fine.
        let g = GeoColBuilder::new(8)
            .geometry(vec![vec![1.0; 8], vec![2.0; 8]])
            .build()
            .unwrap();
        let p = InertialPartitioner::default().partition(&g, 2);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 8);
    }

    #[test]
    fn deterministic() {
        let g = diagonal_strip(32);
        let a = InertialPartitioner::default().partition(&g, 4);
        let b = InertialPartitioner::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn moment_scans_are_rank_count_independent() {
        let g = diagonal_strip(48);
        for nparts in [2, 4, 5] {
            let serial = InertialPartitioner::default().partition(&g, nparts);
            for nranks in [2, 3, 9, 50] {
                let chunked = InertialPartitioner::default().partition_with_scans(
                    &g,
                    nparts,
                    &mut SerialScans { nranks },
                );
                assert_eq!(serial, chunked, "nparts={nparts} nranks={nranks}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "GEOMETRY")]
    fn requires_geometry() {
        let g = GeoColBuilder::new(4)
            .link(vec![0], vec![1])
            .build()
            .unwrap();
        let _ = InertialPartitioner::default().partition(&g, 2);
    }
}
