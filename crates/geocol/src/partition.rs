//! Partitionings and the [`Partitioner`] trait.

use crate::geocol::GeoCoL;
use serde::{Deserialize, Serialize};

/// The result of partitioning a GeoCoL graph: an owning processor for each
/// vertex. In the paper this is exactly the irregular `map` array passed to
/// `DISTRIBUTE irreg(map)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    owners: Vec<u32>,
    nparts: usize,
}

impl Partitioning {
    /// Build from an explicit owner array.
    ///
    /// # Panics
    /// Panics if any owner is `>= nparts`.
    pub fn new(owners: Vec<u32>, nparts: usize) -> Self {
        assert!(nparts > 0, "a partitioning needs at least one part");
        for (v, &o) in owners.iter().enumerate() {
            assert!(
                (o as usize) < nparts,
                "vertex {v} assigned to part {o} but only {nparts} parts exist"
            );
        }
        Partitioning { owners, nparts }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Number of parts (processors).
    #[inline]
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// Owner of `vertex`.
    #[inline]
    pub fn owner(&self, vertex: usize) -> usize {
        self.owners[vertex] as usize
    }

    /// The full owner array (the paper's `map` array).
    #[inline]
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }

    /// The vertices owned by each part, in ascending vertex order.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); self.nparts];
        for (v, &o) in self.owners.iter().enumerate() {
            out[o as usize].push(v as u32);
        }
        out
    }

    /// Number of vertices owned by each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.nparts];
        for &o in &self.owners {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Total load per part according to `geocol`'s load section.
    pub fn part_loads(&self, geocol: &GeoCoL) -> Vec<f64> {
        let mut loads = vec![0.0; self.nparts];
        for (v, &o) in self.owners.iter().enumerate() {
            loads[o as usize] += geocol.vertex_load(v);
        }
        loads
    }
}

/// The contiguous chunk of `0..n_items` assigned to `rank` by a
/// [`RankScans`] executor: `ceil(n/nranks)`-sized blocks, the trailing ones
/// possibly empty. Shared by every executor so that a scan's partial-sum
/// grouping — and therefore its floating-point result — depends only on the
/// rank count, never on the engine.
pub fn scan_chunk(n_items: usize, nranks: usize, rank: usize) -> std::ops::Range<usize> {
    let per = n_items.div_ceil(nranks.max(1));
    let start = (rank * per).min(n_items);
    let end = ((rank + 1) * per).min(n_items);
    start..end
}

/// A rank-local fold kernel handed to [`RankScans::scan`]: called as
/// `kernel(rank, range, partials)` with the rank's [`scan_chunk`] item range
/// and its private accumulator slice.
pub type ScanKernel<'a> = dyn Fn(usize, std::ops::Range<usize>, &mut [f64]) + Sync + 'a;

/// Number of consecutive items folded into one partial-accumulator block by
/// [`block_scan`]. The block boundaries depend only on the item count —
/// never on the rank count — which is what makes block-scan reductions
/// bit-identical across every rank count and engine (see [`block_scan`]).
pub const SCAN_BLOCK: usize = 1024;

/// A per-item-range fold used by [`map_scan`] and [`block_scan`]: called as
/// `fold(items, out)` where `out` has one slot per item ([`map_scan`]) or
/// `width` slots for the whole block ([`block_scan`]).
pub type RangeKernel<'a> = dyn Fn(std::ops::Range<usize>, &mut [f64]) + Sync + 'a;

/// Run an elementwise map rank-parallel through `scans` and return the full
/// `n_items`-long output vector.
///
/// Each rank computes `map(range, out)` for its [`scan_chunk`] item range,
/// writing `out[k]` for item `range.start + k`. Because every item's value
/// is computed by exactly one rank from shared inputs, the result is
/// **bit-identical for every rank count and engine** — this is how the RSB
/// partitioner's sparse matvec and deflate/normalize passes stay exact. The
/// rank-major partials of a `width == ceil(n/nranks)` scan are laid out so
/// that item `i` lands at global offset `i`, so no reassembly copy is
/// needed.
pub fn map_scan(
    scans: &mut dyn RankScans,
    n_items: usize,
    ops_per_item: f64,
    map: &RangeKernel<'_>,
) -> Vec<f64> {
    if n_items == 0 {
        return Vec::new();
    }
    let per = n_items.div_ceil(scans.nranks().max(1));
    let mut out = scans.scan(n_items, per, ops_per_item, &|_rank, range, acc| {
        let len = range.len();
        map(range, &mut acc[..len]);
    });
    // Rank r's chunk is [r*per, (r+1)*per) and its accumulator starts at
    // r*per, so the partials are already the output vector in item order.
    out.truncate(n_items);
    out
}

/// Run a reduction rank-parallel through `scans` as fixed-size-block partial
/// sums, returning the per-block partials concatenated in ascending block
/// order (`ceil(n_items / SCAN_BLOCK)` blocks of `width` values each).
///
/// Items are grouped into [`SCAN_BLOCK`]-sized blocks; the *blocks* (not
/// the items) are chunked over the ranks with [`scan_chunk`], and each rank
/// calls `fold(item_range, acc)` once per block it owns, filling the
/// block's `width`-wide accumulator. Callers combine the returned blocks in
/// ascending block order (sum, min, max, ...). Because the block boundaries
/// and each block's fold order depend only on `n_items`, the combined
/// result is **bit-identical for every rank count and engine** — the
/// single-chunk [`SerialScans::single`] executor behind the pure
/// [`Partitioner::partition`] entry points produces exactly the same
/// floating-point values as a backend-driven scan over any number of ranks.
///
/// `ops_per_item` is the modeled compute charge per *item*: the per-block
/// charge handed to [`RankScans::scan`] is `ops_per_item` times the average
/// items per block, so the total charged over all ranks is exactly
/// `ops_per_item * n_items` (a partial tail block never bills a full
/// block's work).
pub fn block_scan(
    scans: &mut dyn RankScans,
    n_items: usize,
    width: usize,
    ops_per_item: f64,
    fold: &RangeKernel<'_>,
) -> Vec<f64> {
    assert!(width > 0, "block_scan needs at least one accumulator slot");
    let nblocks = n_items.div_ceil(SCAN_BLOCK);
    if nblocks == 0 {
        return Vec::new();
    }
    let nranks = scans.nranks().max(1);
    let blocks_per_rank = nblocks.div_ceil(nranks);
    let partials = scans.scan(
        nblocks,
        width * blocks_per_rank,
        ops_per_item * n_items as f64 / nblocks as f64,
        &|_rank, block_range, acc| {
            for (k, block) in block_range.enumerate() {
                let items = block * SCAN_BLOCK..((block + 1) * SCAN_BLOCK).min(n_items);
                fold(items, &mut acc[k * width..(k + 1) * width]);
            }
        },
    );
    // Compact the rank-major (padded) partials into block-major order.
    let mut out = vec![0.0; nblocks * width];
    for rank in 0..nranks {
        let blocks = scan_chunk(nblocks, nranks, rank);
        let acc = &partials[rank * blocks_per_rank * width..];
        out[blocks.start * width..blocks.end * width].copy_from_slice(&acc[..blocks.len() * width]);
    }
    out
}

/// Executor for rank-chunked data-parallel passes (maps and reduction
/// "scans").
///
/// Partitioners that have been restructured rank-parallel express their
/// per-vertex passes against this object-safe interface; the runtime's
/// mapper coupler hands them an implementation backed by the SPMD
/// `Backend` (so the scans run one chunk per virtual processor and are
/// charged to the simulated machine), while the pure
/// [`Partitioner::partition`] entry point uses the driver-side
/// [`SerialScans`]. Implementations must chunk with [`scan_chunk`] and
/// return rank-major partials; callers combine them in ascending rank
/// order, which keeps results engine-independent by construction.
///
/// Partitioner code does not usually call [`RankScans::scan`] raw: the
/// [`map_scan`] and [`block_scan`] helpers wrap it with conventions
/// (disjoint per-item writes; fixed-size-block partial sums) that make the
/// combined result independent of the *rank count* too, so a partitioning
/// computed through any backend is bit-identical to the pure serial one.
pub trait RankScans {
    /// Number of ranks the scan is folded over.
    fn nranks(&self) -> usize;

    /// Run `kernel(rank, range, partials)` once per rank, where `range` is
    /// [`scan_chunk`]`(n_items, nranks, rank)` and `partials` is that rank's
    /// private zero-initialized `width`-wide accumulator slice. Charges
    /// `ops_per_item` modeled compute units per item to the executing rank
    /// (where a machine is attached) and returns the concatenated rank-major
    /// partials.
    fn scan(
        &mut self,
        n_items: usize,
        width: usize,
        ops_per_item: f64,
        kernel: &ScanKernel<'_>,
    ) -> Vec<f64>;
}

/// Driver-side [`RankScans`] executor: runs every chunk sequentially on the
/// calling thread and charges nothing. With one rank (the default) a scan
/// degenerates to the classic single-pass fold, which is what the pure
/// `Partitioner::partition` entry points use.
#[derive(Debug, Clone, Copy)]
pub struct SerialScans {
    /// Number of chunks the item range is folded over.
    pub nranks: usize,
}

impl SerialScans {
    /// A single-chunk executor (the classic sequential fold).
    pub fn single() -> Self {
        SerialScans { nranks: 1 }
    }
}

impl Default for SerialScans {
    fn default() -> Self {
        Self::single()
    }
}

impl RankScans for SerialScans {
    fn nranks(&self) -> usize {
        self.nranks
    }

    fn scan(
        &mut self,
        n_items: usize,
        width: usize,
        _ops_per_item: f64,
        kernel: &ScanKernel<'_>,
    ) -> Vec<f64> {
        let mut partials = vec![0.0; width * self.nranks];
        for (rank, acc) in partials.chunks_mut(width).enumerate() {
            kernel(rank, scan_chunk(n_items, self.nranks, rank), acc);
        }
        partials
    }
}

/// A data partitioner: maps a GeoCoL graph onto `nparts` parts.
///
/// Implementations must be deterministic for a given input (the reproduction
/// relies on repeatable experiments); any randomization must be seeded
/// internally with a fixed seed or derived from the input.
pub trait Partitioner {
    /// Short, stable name used by the directive `USING <name>` and printed in
    /// benchmark tables (e.g. `"RCB"`, `"RSB"`, `"BLOCK"`).
    fn name(&self) -> &'static str;

    /// Compute a partitioning of `geocol` into `nparts` parts.
    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning;

    /// Like [`Partitioner::partition`], but with a [`RankScans`] executor
    /// the implementation may route its data-parallel passes through. The
    /// default ignores the executor (driver-side algorithms); partitioners
    /// restructured rank-parallel — `RSB`'s power-iteration matvecs,
    /// `RCB`'s extent/histogram median scans and `INERTIAL`'s moment scans
    /// — override it, making them scale with ranks when the runtime passes
    /// a `Backend`-backed executor.
    ///
    /// The restructured partitioners express every pass through
    /// [`map_scan`] (disjoint per-item writes) or [`block_scan`]
    /// (fixed-size-block partial sums), so their output is bit-identical
    /// for **any** rank count — the pure [`Partitioner::partition`] entry
    /// point (a single-chunk [`SerialScans`]) is an exact oracle for every
    /// backend-driven run:
    ///
    /// ```
    /// use chaos_geocol::{GeoColBuilder, Partitioner, RcbPartitioner, SerialScans};
    ///
    /// let g = GeoColBuilder::new(64)
    ///     .geometry(vec![(0..64).map(|i| (i as f64 * 0.37).sin()).collect()])
    ///     .build()
    ///     .unwrap();
    /// let serial = RcbPartitioner.partition(&g, 4);
    /// // Folding the scans over 6 rank chunks instead of 1 changes nothing:
    /// let chunked = RcbPartitioner.partition_with_scans(&g, 4, &mut SerialScans { nranks: 6 });
    /// assert_eq!(serial, chunked);
    /// ```
    fn partition_with_scans(
        &self,
        geocol: &GeoCoL,
        nparts: usize,
        scans: &mut dyn RankScans,
    ) -> Partitioning {
        let _ = scans;
        self.partition(geocol, nparts)
    }

    /// A rough cost estimate, in abstract "operations", of running this
    /// partitioner on `geocol`. The mapper coupler divides this by the
    /// processor count (all the library partitioners are parallelizable) and
    /// charges it to the simulated machine, which is how the paper's
    /// "partitioner" table rows arise — e.g. spectral bisection is roughly two
    /// orders of magnitude more expensive than coordinate bisection on the
    /// 53K mesh.
    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Default: touch every vertex and edge once per level of recursion.
        let levels = (nparts.max(2) as f64).log2().ceil();
        (geocol.nvertices() + geocol.nedges()) as f64 * levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;

    #[test]
    fn members_and_sizes_are_consistent() {
        let p = Partitioning::new(vec![0, 1, 1, 0, 2], 3);
        assert_eq!(p.len(), 5);
        assert_eq!(p.nparts(), 3);
        assert_eq!(p.part_sizes(), vec![2, 2, 1]);
        assert_eq!(p.members(), vec![vec![0, 3], vec![1, 2], vec![4]]);
        assert_eq!(p.owner(2), 1);
    }

    #[test]
    fn part_loads_use_geocol_weights() {
        let g = GeoColBuilder::new(4)
            .load(vec![1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.part_loads(&g), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "only 2 parts exist")]
    fn rejects_out_of_range_owner() {
        let _ = Partitioning::new(vec![0, 2], 2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn rejects_zero_parts() {
        let _ = Partitioning::new(vec![], 0);
    }

    #[test]
    fn empty_partitioning_is_fine() {
        let p = Partitioning::new(vec![], 4);
        assert!(p.is_empty());
        assert_eq!(p.part_sizes(), vec![0; 4]);
    }

    #[test]
    fn scan_chunks_cover_the_range_in_order() {
        for (n, ranks) in [(10, 3), (7, 7), (3, 8), (0, 4), (4096, 5)] {
            let mut next = 0;
            for r in 0..ranks {
                let c = scan_chunk(n, ranks, r);
                assert_eq!(c.start, next.min(n));
                next = c.end;
            }
            assert_eq!(next, n, "chunks must cover 0..{n} exactly");
        }
    }

    #[test]
    fn map_scan_is_rank_count_independent() {
        let data: Vec<f64> = (0..777).map(|i| (i as f64 * 0.13).cos()).collect();
        let expect: Vec<f64> = data.iter().map(|v| v * 3.0 - 1.0).collect();
        for nranks in [1, 2, 5, 16, 1000] {
            let got = map_scan(
                &mut SerialScans { nranks },
                data.len(),
                2.0,
                &|range, out| {
                    for (k, i) in range.enumerate() {
                        out[k] = data[i] * 3.0 - 1.0;
                    }
                },
            );
            assert_eq!(got.len(), expect.len());
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "nranks={nranks}");
            }
        }
    }

    #[test]
    fn block_scan_sums_are_rank_count_independent() {
        // Enough items for several blocks, awkwardly misaligned with both
        // the block size and every chunking swept below.
        let data: Vec<f64> = (0..SCAN_BLOCK * 3 + 517)
            .map(|i| (i as f64 * 0.7).sin() + 0.01 * i as f64)
            .collect();
        let fold: &RangeKernel<'_> = &|items, acc| {
            for i in items {
                acc[0] += data[i];
                acc[1] += data[i] * data[i];
            }
        };
        let reference = block_scan(&mut SerialScans::single(), data.len(), 2, 2.0, fold);
        assert_eq!(reference.len(), data.len().div_ceil(SCAN_BLOCK) * 2);
        for nranks in [2, 3, 7, 64] {
            let got = block_scan(&mut SerialScans { nranks }, data.len(), 2, 2.0, fold);
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "nranks={nranks}");
            }
        }
    }

    #[test]
    fn scans_handle_empty_inputs() {
        let mut scans = SerialScans { nranks: 4 };
        assert!(map_scan(&mut scans, 0, 1.0, &|_, _| {}).is_empty());
        assert!(block_scan(&mut scans, 0, 3, 1.0, &|_, _| {}).is_empty());
    }
}
