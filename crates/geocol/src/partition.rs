//! Partitionings and the [`Partitioner`] trait.

use crate::geocol::GeoCoL;
use serde::{Deserialize, Serialize};

/// The result of partitioning a GeoCoL graph: an owning processor for each
/// vertex. In the paper this is exactly the irregular `map` array passed to
/// `DISTRIBUTE irreg(map)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    owners: Vec<u32>,
    nparts: usize,
}

impl Partitioning {
    /// Build from an explicit owner array.
    ///
    /// # Panics
    /// Panics if any owner is `>= nparts`.
    pub fn new(owners: Vec<u32>, nparts: usize) -> Self {
        assert!(nparts > 0, "a partitioning needs at least one part");
        for (v, &o) in owners.iter().enumerate() {
            assert!(
                (o as usize) < nparts,
                "vertex {v} assigned to part {o} but only {nparts} parts exist"
            );
        }
        Partitioning { owners, nparts }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Number of parts (processors).
    #[inline]
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// Owner of `vertex`.
    #[inline]
    pub fn owner(&self, vertex: usize) -> usize {
        self.owners[vertex] as usize
    }

    /// The full owner array (the paper's `map` array).
    #[inline]
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }

    /// The vertices owned by each part, in ascending vertex order.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); self.nparts];
        for (v, &o) in self.owners.iter().enumerate() {
            out[o as usize].push(v as u32);
        }
        out
    }

    /// Number of vertices owned by each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.nparts];
        for &o in &self.owners {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Total load per part according to `geocol`'s load section.
    pub fn part_loads(&self, geocol: &GeoCoL) -> Vec<f64> {
        let mut loads = vec![0.0; self.nparts];
        for (v, &o) in self.owners.iter().enumerate() {
            loads[o as usize] += geocol.vertex_load(v);
        }
        loads
    }
}

/// The contiguous chunk of `0..n_items` assigned to `rank` by a
/// [`RankScans`] executor: `ceil(n/nranks)`-sized blocks, the trailing ones
/// possibly empty. Shared by every executor so that a scan's partial-sum
/// grouping — and therefore its floating-point result — depends only on the
/// rank count, never on the engine.
pub fn scan_chunk(n_items: usize, nranks: usize, rank: usize) -> std::ops::Range<usize> {
    let per = n_items.div_ceil(nranks.max(1));
    let start = (rank * per).min(n_items);
    let end = ((rank + 1) * per).min(n_items);
    start..end
}

/// A rank-local fold kernel handed to [`RankScans::scan`]: called as
/// `kernel(rank, range, partials)` with the rank's [`scan_chunk`] item range
/// and its private accumulator slice.
pub type ScanKernel<'a> = dyn Fn(usize, std::ops::Range<usize>, &mut [f64]) + Sync + 'a;

/// Executor for rank-chunked reduction passes ("moment scans").
///
/// Partitioners that have been restructured rank-parallel express their
/// per-vertex reduction passes against this object-safe interface; the
/// runtime's mapper coupler hands them an implementation backed by the SPMD
/// `Backend` (so the scans run one chunk per virtual processor and are
/// charged to the simulated machine), while the pure
/// [`Partitioner::partition`] entry point uses the driver-side
/// [`SerialScans`]. Implementations must chunk with [`scan_chunk`] and
/// return rank-major partials; callers combine them in ascending rank
/// order, which keeps results engine-independent by construction.
pub trait RankScans {
    /// Number of ranks the scan is folded over.
    fn nranks(&self) -> usize;

    /// Run `kernel(rank, range, partials)` once per rank, where `range` is
    /// [`scan_chunk`]`(n_items, nranks, rank)` and `partials` is that rank's
    /// private zero-initialized `width`-wide accumulator slice. Charges
    /// `ops_per_item` modeled compute units per item to the executing rank
    /// (where a machine is attached) and returns the concatenated rank-major
    /// partials.
    fn scan(
        &mut self,
        n_items: usize,
        width: usize,
        ops_per_item: f64,
        kernel: &ScanKernel<'_>,
    ) -> Vec<f64>;
}

/// Driver-side [`RankScans`] executor: runs every chunk sequentially on the
/// calling thread and charges nothing. With one rank (the default) a scan
/// degenerates to the classic single-pass fold, which is what the pure
/// `Partitioner::partition` entry points use.
#[derive(Debug, Clone, Copy)]
pub struct SerialScans {
    /// Number of chunks the item range is folded over.
    pub nranks: usize,
}

impl SerialScans {
    /// A single-chunk executor (the classic sequential fold).
    pub fn single() -> Self {
        SerialScans { nranks: 1 }
    }
}

impl Default for SerialScans {
    fn default() -> Self {
        Self::single()
    }
}

impl RankScans for SerialScans {
    fn nranks(&self) -> usize {
        self.nranks
    }

    fn scan(
        &mut self,
        n_items: usize,
        width: usize,
        _ops_per_item: f64,
        kernel: &ScanKernel<'_>,
    ) -> Vec<f64> {
        let mut partials = vec![0.0; width * self.nranks];
        for (rank, acc) in partials.chunks_mut(width).enumerate() {
            kernel(rank, scan_chunk(n_items, self.nranks, rank), acc);
        }
        partials
    }
}

/// A data partitioner: maps a GeoCoL graph onto `nparts` parts.
///
/// Implementations must be deterministic for a given input (the reproduction
/// relies on repeatable experiments); any randomization must be seeded
/// internally with a fixed seed or derived from the input.
pub trait Partitioner {
    /// Short, stable name used by the directive `USING <name>` and printed in
    /// benchmark tables (e.g. `"RCB"`, `"RSB"`, `"BLOCK"`).
    fn name(&self) -> &'static str;

    /// Compute a partitioning of `geocol` into `nparts` parts.
    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning;

    /// Like [`Partitioner::partition`], but with a [`RankScans`] executor
    /// the implementation may route its data-parallel reduction passes
    /// through. The default ignores the executor (driver-side algorithms);
    /// partitioners restructured rank-parallel (currently `INERTIAL`'s
    /// moment scans) override it, making them scale with ranks when the
    /// runtime passes a `Backend`-backed executor.
    fn partition_with_scans(
        &self,
        geocol: &GeoCoL,
        nparts: usize,
        scans: &mut dyn RankScans,
    ) -> Partitioning {
        let _ = scans;
        self.partition(geocol, nparts)
    }

    /// A rough cost estimate, in abstract "operations", of running this
    /// partitioner on `geocol`. The mapper coupler divides this by the
    /// processor count (all the library partitioners are parallelizable) and
    /// charges it to the simulated machine, which is how the paper's
    /// "partitioner" table rows arise — e.g. spectral bisection is roughly two
    /// orders of magnitude more expensive than coordinate bisection on the
    /// 53K mesh.
    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Default: touch every vertex and edge once per level of recursion.
        let levels = (nparts.max(2) as f64).log2().ceil();
        (geocol.nvertices() + geocol.nedges()) as f64 * levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;

    #[test]
    fn members_and_sizes_are_consistent() {
        let p = Partitioning::new(vec![0, 1, 1, 0, 2], 3);
        assert_eq!(p.len(), 5);
        assert_eq!(p.nparts(), 3);
        assert_eq!(p.part_sizes(), vec![2, 2, 1]);
        assert_eq!(p.members(), vec![vec![0, 3], vec![1, 2], vec![4]]);
        assert_eq!(p.owner(2), 1);
    }

    #[test]
    fn part_loads_use_geocol_weights() {
        let g = GeoColBuilder::new(4)
            .load(vec![1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.part_loads(&g), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "only 2 parts exist")]
    fn rejects_out_of_range_owner() {
        let _ = Partitioning::new(vec![0, 2], 2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn rejects_zero_parts() {
        let _ = Partitioning::new(vec![], 0);
    }

    #[test]
    fn empty_partitioning_is_fine() {
        let p = Partitioning::new(vec![], 4);
        assert!(p.is_empty());
        assert_eq!(p.part_sizes(), vec![0; 4]);
    }
}
