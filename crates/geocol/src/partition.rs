//! Partitionings and the [`Partitioner`] trait.

use crate::geocol::GeoCoL;
use serde::{Deserialize, Serialize};

/// The result of partitioning a GeoCoL graph: an owning processor for each
/// vertex. In the paper this is exactly the irregular `map` array passed to
/// `DISTRIBUTE irreg(map)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    owners: Vec<u32>,
    nparts: usize,
}

impl Partitioning {
    /// Build from an explicit owner array.
    ///
    /// # Panics
    /// Panics if any owner is `>= nparts`.
    pub fn new(owners: Vec<u32>, nparts: usize) -> Self {
        assert!(nparts > 0, "a partitioning needs at least one part");
        for (v, &o) in owners.iter().enumerate() {
            assert!(
                (o as usize) < nparts,
                "vertex {v} assigned to part {o} but only {nparts} parts exist"
            );
        }
        Partitioning { owners, nparts }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Number of parts (processors).
    #[inline]
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// Owner of `vertex`.
    #[inline]
    pub fn owner(&self, vertex: usize) -> usize {
        self.owners[vertex] as usize
    }

    /// The full owner array (the paper's `map` array).
    #[inline]
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }

    /// The vertices owned by each part, in ascending vertex order.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); self.nparts];
        for (v, &o) in self.owners.iter().enumerate() {
            out[o as usize].push(v as u32);
        }
        out
    }

    /// Number of vertices owned by each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.nparts];
        for &o in &self.owners {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Total load per part according to `geocol`'s load section.
    pub fn part_loads(&self, geocol: &GeoCoL) -> Vec<f64> {
        let mut loads = vec![0.0; self.nparts];
        for (v, &o) in self.owners.iter().enumerate() {
            loads[o as usize] += geocol.vertex_load(v);
        }
        loads
    }
}

/// A data partitioner: maps a GeoCoL graph onto `nparts` parts.
///
/// Implementations must be deterministic for a given input (the reproduction
/// relies on repeatable experiments); any randomization must be seeded
/// internally with a fixed seed or derived from the input.
pub trait Partitioner {
    /// Short, stable name used by the directive `USING <name>` and printed in
    /// benchmark tables (e.g. `"RCB"`, `"RSB"`, `"BLOCK"`).
    fn name(&self) -> &'static str;

    /// Compute a partitioning of `geocol` into `nparts` parts.
    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning;

    /// A rough cost estimate, in abstract "operations", of running this
    /// partitioner on `geocol`. The mapper coupler divides this by the
    /// processor count (all the library partitioners are parallelizable) and
    /// charges it to the simulated machine, which is how the paper's
    /// "partitioner" table rows arise — e.g. spectral bisection is roughly two
    /// orders of magnitude more expensive than coordinate bisection on the
    /// 53K mesh.
    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Default: touch every vertex and edge once per level of recursion.
        let levels = (nparts.max(2) as f64).log2().ceil();
        (geocol.nvertices() + geocol.nedges()) as f64 * levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;

    #[test]
    fn members_and_sizes_are_consistent() {
        let p = Partitioning::new(vec![0, 1, 1, 0, 2], 3);
        assert_eq!(p.len(), 5);
        assert_eq!(p.nparts(), 3);
        assert_eq!(p.part_sizes(), vec![2, 2, 1]);
        assert_eq!(p.members(), vec![vec![0, 3], vec![1, 2], vec![4]]);
        assert_eq!(p.owner(2), 1);
    }

    #[test]
    fn part_loads_use_geocol_weights() {
        let g = GeoColBuilder::new(4)
            .load(vec![1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.part_loads(&g), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "only 2 parts exist")]
    fn rejects_out_of_range_owner() {
        let _ = Partitioning::new(vec![0, 2], 2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn rejects_zero_parts() {
        let _ = Partitioning::new(vec![], 0);
    }

    #[test]
    fn empty_partitioning_is_fine() {
        let p = Partitioning::new(vec![], 4);
        assert!(p.is_empty());
        assert_eq!(p.part_sizes(), vec![0; 4]);
    }
}
