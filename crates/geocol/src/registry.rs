//! Name-keyed partitioner registry.
//!
//! The paper's directive `SET distfmt BY PARTITIONING G USING RSB` selects a
//! partitioner from "a library of commonly available partitioners" by name.
//! This module is that library's lookup table; `chaos-lang` resolves the
//! `USING <name>` clause through it, and users can still pass their own
//! [`Partitioner`] implementation directly to the runtime coupler (the
//! "customized partitioner with a matching calling sequence" case).

use crate::block::{BlockPartitioner, CyclicPartitioner, RandomPartitioner};
use crate::inertial::InertialPartitioner;
use crate::kl::KlRefinedPartitioner;
use crate::partition::Partitioner;
use crate::rcb::RcbPartitioner;
use crate::rsb::RsbPartitioner;

/// Look up a library partitioner by its directive name (case-insensitive).
///
/// Recognized names: `BLOCK`, `CYCLIC`, `RANDOM`, `RCB` (aliases
/// `COORDINATE`, `BINARY-COORDINATE`), `INERTIAL`, `RSB` (alias `SPECTRAL`),
/// and the KL/FM-refined variants `RCB-KL` and `RSB-KL`.
pub fn partitioner_by_name(name: &str) -> Option<Box<dyn Partitioner + Send + Sync>> {
    match name.to_ascii_uppercase().as_str() {
        "BLOCK" => Some(Box::new(BlockPartitioner)),
        "CYCLIC" => Some(Box::new(CyclicPartitioner)),
        "RANDOM" => Some(Box::new(RandomPartitioner::default())),
        "RCB" | "COORDINATE" | "BINARY-COORDINATE" | "BINARY_COORDINATE" => {
            Some(Box::new(RcbPartitioner))
        }
        "INERTIAL" => Some(Box::new(InertialPartitioner::default())),
        "RSB" | "SPECTRAL" => Some(Box::new(RsbPartitioner::default())),
        "RCB-KL" | "RCB_KL" => Some(Box::new(KlRefinedPartitioner::new(RcbPartitioner))),
        "RSB-KL" | "RSB_KL" => Some(Box::new(KlRefinedPartitioner::new(
            RsbPartitioner::default(),
        ))),
        _ => None,
    }
}

/// The canonical names accepted by [`partitioner_by_name`].
pub fn registered_partitioner_names() -> &'static [&'static str] {
    &[
        "BLOCK", "CYCLIC", "RANDOM", "RCB", "INERTIAL", "RSB", "RCB-KL", "RSB-KL",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;

    #[test]
    fn every_registered_name_resolves() {
        for name in registered_partitioner_names() {
            let p = partitioner_by_name(name).unwrap_or_else(|| panic!("{name} not found"));
            if name.ends_with("-KL") {
                assert_eq!(p.name(), "KL-REFINED");
            } else {
                assert_eq!(&p.name(), name);
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_supports_aliases() {
        assert_eq!(partitioner_by_name("rsb").unwrap().name(), "RSB");
        assert_eq!(partitioner_by_name("Spectral").unwrap().name(), "RSB");
        assert_eq!(partitioner_by_name("coordinate").unwrap().name(), "RCB");
        assert!(partitioner_by_name("METIS").is_none());
    }

    #[test]
    fn resolved_partitioners_are_usable() {
        let g = GeoColBuilder::new(8)
            .geometry(vec![(0..8).map(|i| i as f64).collect()])
            .link((0..7u32).collect::<Vec<_>>(), (1..8u32).collect::<Vec<_>>())
            .build()
            .unwrap();
        for name in ["BLOCK", "CYCLIC", "RCB", "RSB", "INERTIAL", "RANDOM"] {
            let p = partitioner_by_name(name).unwrap();
            let part = p.partition(&g, 2);
            assert_eq!(part.len(), 8, "{name}");
        }
    }
}
