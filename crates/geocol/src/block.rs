//! Regular partitioners used as baselines: BLOCK, CYCLIC and RANDOM.
//!
//! `BLOCK` is the naive HPF distribution the paper compares against in
//! Table 4 ("we assigned each processor contiguous blocks of array
//! elements"). `CYCLIC` is the other standard HPF regular distribution.
//! `RANDOM` is a deliberately terrible strawman used by tests and ablation
//! benches to bound the worst case.

use crate::geocol::GeoCoL;
use crate::partition::{Partitioner, Partitioning};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Contiguous block partitioning: vertex `i` goes to part
/// `i / ceil(n / nparts)` (HPF `BLOCK`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockPartitioner;

/// Assign contiguous blocks of `n` elements to `nparts` parts, the same
/// arithmetic used by the runtime's `BlockDist`. Exposed so the runtime and
/// the partitioner can never disagree.
pub fn block_owner(n: usize, nparts: usize, index: usize) -> usize {
    debug_assert!(index < n);
    let block = n.div_ceil(nparts).max(1);
    (index / block).min(nparts - 1)
}

impl Partitioner for BlockPartitioner {
    fn name(&self) -> &'static str {
        "BLOCK"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        let n = geocol.nvertices();
        let owners = (0..n).map(|i| block_owner(n, nparts, i) as u32).collect();
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, _nparts: usize) -> f64 {
        geocol.nvertices() as f64
    }
}

/// Round-robin partitioning: vertex `i` goes to part `i % nparts`
/// (HPF `CYCLIC`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CyclicPartitioner;

impl Partitioner for CyclicPartitioner {
    fn name(&self) -> &'static str {
        "CYCLIC"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        let owners = (0..geocol.nvertices())
            .map(|i| (i % nparts) as u32)
            .collect();
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, _nparts: usize) -> f64 {
        geocol.nvertices() as f64
    }
}

/// Uniform random assignment with a fixed seed. Deterministic for a given
/// (seed, vertex count, nparts) triple.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    /// RNG seed; the default is 0xC4A05 ("CHAOS").
    pub seed: u64,
}

impl Default for RandomPartitioner {
    fn default() -> Self {
        RandomPartitioner { seed: 0xC4A05 }
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "RANDOM"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let owners = (0..geocol.nvertices())
            .map(|_| rng.gen_range(0..nparts) as u32)
            .collect();
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, _nparts: usize) -> f64 {
        geocol.nvertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;
    use crate::metrics::PartitionQuality;

    fn line(n: usize) -> GeoCoL {
        let e1: Vec<u32> = (0..n as u32 - 1).collect();
        let e2: Vec<u32> = (1..n as u32).collect();
        GeoColBuilder::new(n).link(e1, e2).build().unwrap()
    }

    #[test]
    fn block_is_contiguous_and_balanced() {
        let g = line(100);
        let p = BlockPartitioner.partition(&g, 4);
        assert_eq!(p.part_sizes(), vec![25, 25, 25, 25]);
        // Contiguity: owners are non-decreasing.
        assert!(p.owners().windows(2).all(|w| w[0] <= w[1]));
        // A 1-D line split into 4 contiguous blocks cuts exactly 3 edges.
        assert_eq!(PartitionQuality::evaluate(&g, &p).edge_cut, 3);
    }

    #[test]
    fn block_handles_non_divisible_sizes() {
        let g = line(10);
        let p = BlockPartitioner.partition(&g, 4);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s <= 3));
        // Every part index must be valid even when n < nparts.
        let tiny = line(2);
        let p = BlockPartitioner.partition(&tiny, 8);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 2);
    }

    #[test]
    fn block_owner_covers_all_parts_when_divisible() {
        let owners: Vec<usize> = (0..16).map(|i| block_owner(16, 4, i)).collect();
        assert_eq!(owners[0], 0);
        assert_eq!(owners[15], 3);
        for p in 0..4 {
            assert_eq!(owners.iter().filter(|&&o| o == p).count(), 4);
        }
    }

    #[test]
    fn cyclic_round_robins() {
        let g = line(9);
        let p = CyclicPartitioner.partition(&g, 3);
        assert_eq!(p.owners(), &[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        // Cyclic on a line cuts every edge — the classic pathology.
        assert_eq!(PartitionQuality::evaluate(&g, &p).edge_cut, 8);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = line(50);
        let a = RandomPartitioner::default().partition(&g, 4);
        let b = RandomPartitioner::default().partition(&g, 4);
        assert_eq!(a, b);
        let c = RandomPartitioner { seed: 7 }.partition(&g, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BlockPartitioner.name(), "BLOCK");
        assert_eq!(CyclicPartitioner.name(), "CYCLIC");
        assert_eq!(RandomPartitioner::default().name(), "RANDOM");
    }
}
