//! Recursive spectral bisection (Simon) — the connectivity-based partitioner
//! used in the paper's Table 2 ("a parallelized version of Simon's
//! eigenvalue partitioner").
//!
//! # Algorithm
//!
//! Each recursion level computes an approximation to the **Fiedler vector**
//! (the eigenvector of the graph Laplacian belonging to the second-smallest
//! eigenvalue) of the current subgraph and splits the vertices at the
//! load-weighted median of their Fiedler components. The Fiedler vector is
//! obtained with power iteration on the spectrally shifted matrix
//! `B = cI − L` (`c` = a bound on the largest Laplacian eigenvalue), with the
//! constant vector deflated away, which avoids any external linear-algebra
//! dependency while keeping the characteristic behaviour the paper reports:
//! much higher partitioning cost than coordinate bisection, in exchange for
//! the lowest edge cut / fastest executor.
//!
//! # Rank-parallel structure (this is the expensive partitioner)
//!
//! The inner loops of [`fiedler_vector`](RsbPartitioner) dominate the whole
//! preprocessing pipeline, so they run **rank-parallel** through the
//! [`RankScans`] executor (the PARTI/CHAOS partitioners themselves ran
//! data-parallel on the nodes — this is the reproduction's version of that):
//!
//! * the **sparse matvec** `y = Bx` over the induced-subgraph CSR adjacency
//!   is a [`map_scan`] — each rank computes its `ceil(m/nranks)` chunk of
//!   `y`, charging `~(3 + 2·avg_degree)` modeled ops per vertex;
//! * the `deflate_constant` / `normalize` / `dot` **reductions** are one
//!   [`block_scan`] per iteration computing `[Σy, Σy², Σy·x, Σx]` as
//!   fixed-size-block partial sums, folded driver-side in ascending block
//!   order;
//! * the deflate + renormalize **update** `x ← (y − mean)/‖y − mean‖` is a
//!   second [`map_scan`].
//!
//! Only O(1) scalar work and the (comparison-based, inherently sequential)
//! median split stay on the driver between scans. Because maps write
//! disjoint items and reductions fold fixed blocks, the Fiedler vector — and
//! therefore the partitioning — is bit-identical for every rank count and
//! engine: the pure [`Partitioner::partition`] entry point (single-chunk
//! [`SerialScans`]) is an exact oracle for `Machine`, `ThreadedBackend` and
//! `PooledBackend` runs (`tests/backend_equivalence.rs` proptests this).
//!
//! # Charge model
//!
//! When invoked through the mapper coupler, the scans charge their compute
//! to the executing ranks' clocks and the coupler deducts those charged ops
//! from [`Partitioner::cost_estimate`]'s lump sum, so routed work is never
//! double-charged. The estimate (`iterations · (n + 2e) · log₂ nparts`)
//! keeps RSB one to two orders of magnitude above RCB, matching Table 2.

use crate::geocol::GeoCoL;
use crate::partition::{block_scan, map_scan, Partitioner, Partitioning, RankScans, SerialScans};

/// Recursive spectral bisection partitioner.
#[derive(Debug, Clone, Copy)]
pub struct RsbPartitioner {
    /// Power-iteration steps per bisection level.
    pub power_iterations: usize,
    /// Convergence tolerance on the change of the Rayleigh quotient.
    pub tolerance: f64,
}

impl Default for RsbPartitioner {
    fn default() -> Self {
        RsbPartitioner {
            power_iterations: 200,
            tolerance: 1e-7,
        }
    }
}

impl Partitioner for RsbPartitioner {
    fn name(&self) -> &'static str {
        "RSB"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        // Single-chunk scans degenerate to the classic sequential folds —
        // and, because every scan is rank-count independent, this is also
        // the bit-exact oracle for every backend-driven run.
        self.partition_with_scans(geocol, nparts, &mut SerialScans::single())
    }

    /// The rank-parallel entry point: the power iteration behind every
    /// Fiedler vector — sparse matvec, moment reductions and the
    /// deflate/normalize update — runs through `scans`, one chunk per rank,
    /// so the runtime can execute it through `Backend::run_compute` while
    /// the partitioning stays bit-identical to [`Partitioner::partition`].
    fn partition_with_scans(
        &self,
        geocol: &GeoCoL,
        nparts: usize,
        scans: &mut dyn RankScans,
    ) -> Partitioning {
        assert!(
            geocol.has_connectivity(),
            "RSB requires a LINK (connectivity) section in the GeoCoL structure"
        );
        let n = geocol.nvertices();
        let mut owners = vec![0u32; n];
        if n == 0 || nparts == 1 {
            return Partitioning::new(owners, nparts);
        }
        let mut vertices: Vec<u32> = (0..n as u32).collect();
        let mut local = vec![u32::MAX; n];
        self.bisect(
            geocol,
            &mut vertices,
            0,
            nparts,
            &mut owners,
            &mut local,
            scans,
        );
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Each power-iteration step touches every edge of the subgraph; the
        // subgraphs at one recursion level cover the whole graph, so a level
        // costs ~ iterations * (n + 2e). This is what makes RSB one to two
        // orders of magnitude more expensive than RCB, matching the paper's
        // Table 2 (258 s vs 1.6 s on the 53K mesh).
        let levels = (nparts.max(2) as f64).log2().ceil();
        self.power_iterations as f64
            * (geocol.nvertices() as f64 + 2.0 * geocol.nedges() as f64)
            * levels
    }
}

impl RsbPartitioner {
    #[allow(clippy::too_many_arguments)]
    fn bisect(
        &self,
        geocol: &GeoCoL,
        vertices: &mut [u32],
        part_lo: usize,
        nparts: usize,
        owners: &mut [u32],
        local: &mut [u32],
        scans: &mut dyn RankScans,
    ) {
        if nparts <= 1 || vertices.len() <= 1 {
            for &v in vertices.iter() {
                owners[v as usize] = part_lo as u32;
            }
            return;
        }

        let fiedler = self.fiedler_vector(geocol, vertices, local, scans);

        // Sort by Fiedler component (ties by vertex id for determinism).
        let mut order: Vec<usize> = (0..vertices.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            fiedler[a]
                .partial_cmp(&fiedler[b])
                .unwrap()
                .then(vertices[a].cmp(&vertices[b]))
        });
        let sorted: Vec<u32> = order.iter().map(|&i| vertices[i]).collect();
        vertices.copy_from_slice(&sorted);

        let left_parts = nparts / 2;
        let right_parts = nparts - left_parts;
        let vs: &[u32] = vertices;
        let total_load = block_scan(scans, vs.len(), 1, 1.0, &|items, acc| {
            for i in items {
                acc[0] += geocol.vertex_load(vs[i] as usize);
            }
        })
        .iter()
        .sum::<f64>();
        let target_left = total_load * left_parts as f64 / nparts as f64;
        let mut acc = 0.0;
        let mut split = 0usize;
        for (i, &v) in vertices.iter().enumerate() {
            acc += geocol.vertex_load(v as usize);
            split = i + 1;
            if acc >= target_left {
                break;
            }
        }
        split = split.clamp(1, vertices.len() - 1);

        let (left, right) = vertices.split_at_mut(split);
        self.bisect(geocol, left, part_lo, left_parts, owners, local, scans);
        self.bisect(
            geocol,
            right,
            part_lo + left_parts,
            right_parts,
            owners,
            local,
            scans,
        );
    }

    /// Approximate Fiedler vector of the subgraph induced by `vertices`,
    /// indexed by position within `vertices`. The power iteration's matvec,
    /// moment reductions and deflate/normalize update run through `scans`
    /// (see the module docs); `local` is reusable global→local scratch.
    fn fiedler_vector(
        &self,
        geocol: &GeoCoL,
        vertices: &[u32],
        local: &mut [u32],
        scans: &mut dyn RankScans,
    ) -> Vec<f64> {
        let m = vertices.len();
        // Local index lookup + induced CSR adjacency (local indices),
        // driver-side setup: two counting passes, no per-vertex Vecs.
        for (i, &v) in vertices.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut offsets = vec![0usize; m + 1];
        for (i, &v) in vertices.iter().enumerate() {
            let mut deg = 0usize;
            for &nb in geocol.neighbors(v as usize) {
                if local[nb as usize] != u32::MAX {
                    deg += 1;
                }
            }
            offsets[i + 1] = offsets[i] + deg;
        }
        let mut targets = vec![0u32; offsets[m]];
        let mut cursor = 0usize;
        for &v in vertices {
            for &nb in geocol.neighbors(v as usize) {
                let l = local[nb as usize];
                if l != u32::MAX {
                    targets[cursor] = l;
                    cursor += 1;
                }
            }
        }
        let max_degree = (0..m)
            .map(|i| offsets[i + 1] - offsets[i])
            .max()
            .unwrap_or(0) as f64;
        // Shift so that B = cI - L is positive semi-definite with the Fiedler
        // direction as its second-largest eigenvector; c = 2*max_degree + 1
        // comfortably bounds the Laplacian spectrum.
        let c = 2.0 * max_degree + 1.0;
        // Modeled per-vertex cost of one matvec row: the diagonal term plus
        // a multiply-add per incident edge.
        let matvec_ops = 3.0 + 2.0 * offsets[m] as f64 / m as f64;

        // Deterministic pseudo-random start vector, orthogonal to 1
        // (driver-side: O(m) once per level, no scan state involved).
        let mut x: Vec<f64> = (0..m)
            .map(|i| {
                let v = vertices[i] as u64;
                let h = v.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(31);
                (h % 10_000) as f64 / 10_000.0 - 0.5
            })
            .collect();
        deflate_constant(&mut x);
        normalize(&mut x);

        let mut prev_rayleigh = f64::INFINITY;
        for _ in 0..self.power_iterations {
            // Rank-parallel matvec: y = B x = c*x - L x, one chunk per rank.
            let (offs, tgts, xr) = (&offsets, &targets, &x);
            let y = map_scan(scans, m, matvec_ops, &|range, out| {
                for (k, i) in range.enumerate() {
                    let row = offs[i]..offs[i + 1];
                    let mut s = (c - row.len() as f64) * xr[i];
                    for &nb in &tgts[row] {
                        s += xr[nb as usize];
                    }
                    out[k] = s;
                }
            });

            // Rank-parallel moments: [Σy, Σy², Σy·x, Σx] as fixed-block
            // partial sums, folded in ascending block order.
            let yr = &y;
            let blocks = block_scan(scans, m, 4, 4.0, &|items, acc| {
                for i in items {
                    acc[0] += yr[i];
                    acc[1] += yr[i] * yr[i];
                    acc[2] += yr[i] * xr[i];
                    acc[3] += xr[i];
                }
            });
            let (mut sy, mut sy2, mut syx, mut sx) = (0.0, 0.0, 0.0, 0.0);
            for b in blocks.chunks_exact(4) {
                sy += b[0];
                sy2 += b[1];
                syx += b[2];
                sx += b[3];
            }
            let mean = sy / m as f64;
            // ‖y − mean‖² = Σy² − mean·Σy; with x deflated, mean stays tiny
            // relative to the spread, so the identity is numerically safe.
            let norm = (sy2 - mean * sy).max(0.0).sqrt();
            if norm < 1e-30 {
                // Graph is (near-)complete or degenerate; keep current x.
                break;
            }
            // Rayleigh quotient of L: lambda = c - (y - mean)·x.
            let rayleigh = c - (syx - mean * sx);

            // Rank-parallel deflate + renormalize: x ← (y − mean)/norm.
            x = map_scan(scans, m, 2.0, &|range, out| {
                for (k, i) in range.enumerate() {
                    out[k] = (yr[i] - mean) / norm;
                }
            });
            if (rayleigh - prev_rayleigh).abs() < self.tolerance {
                break;
            }
            prev_rayleigh = rayleigh;
        }
        // Reset the scratch for the sibling/parent calls.
        for &v in vertices {
            local[v as usize] = u32::MAX;
        }
        x
    }
}

/// Remove the component along the constant vector (the trivial Laplacian
/// eigenvector). Driver-side helper for the start vector.
fn deflate_constant(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

/// Normalize to unit length, returning the pre-normalization norm.
/// Driver-side helper for the start vector.
fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-30 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockPartitioner;
    use crate::geocol::GeoColBuilder;
    use crate::metrics::PartitionQuality;

    /// Two dense clusters joined by a single bridge edge. The spectral split
    /// must find the bridge.
    fn dumbbell(cluster: usize) -> GeoCoL {
        let n = 2 * cluster;
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for c in 0..2 {
            let base = (c * cluster) as u32;
            for i in 0..cluster as u32 {
                for j in (i + 1)..cluster as u32 {
                    e1.push(base + i);
                    e2.push(base + j);
                }
            }
        }
        // The bridge.
        e1.push(0);
        e2.push(cluster as u32);
        GeoColBuilder::new(n).link(e1, e2).build().unwrap()
    }

    #[test]
    fn rsb_finds_the_bridge_in_a_dumbbell() {
        let g = dumbbell(12);
        let p = RsbPartitioner::default().partition(&g, 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(
            q.edge_cut, 1,
            "spectral bisection should cut only the bridge"
        );
        assert_eq!(q.load_imbalance, 1.0);
    }

    /// 2-D grid with vertices renumbered so that BLOCK performs poorly.
    fn shuffled_grid(side: usize) -> GeoCoL {
        let n = side * side;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = 99u64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    e1.push(perm[v] as u32);
                    e2.push(perm[v + 1] as u32);
                }
                if r + 1 < side {
                    e1.push(perm[v] as u32);
                    e2.push(perm[v + side] as u32);
                }
            }
        }
        GeoColBuilder::new(n).link(e1, e2).build().unwrap()
    }

    #[test]
    fn rsb_beats_block_on_shuffled_grid() {
        let g = shuffled_grid(12);
        let rsb = PartitionQuality::evaluate(&g, &RsbPartitioner::default().partition(&g, 4));
        let block = PartitionQuality::evaluate(&g, &BlockPartitioner.partition(&g, 4));
        assert!(
            (rsb.edge_cut as f64) < 0.6 * block.edge_cut as f64,
            "RSB cut {} vs BLOCK cut {}",
            rsb.edge_cut,
            block.edge_cut
        );
        assert!(rsb.load_imbalance <= 1.1);
    }

    #[test]
    fn rsb_multiway_is_balanced() {
        let g = shuffled_grid(10);
        for nparts in [4, 8, 6] {
            let p = RsbPartitioner::default().partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert!(
                q.load_imbalance <= 1.3,
                "nparts={nparts} imbalance {}",
                q.load_imbalance
            );
            assert_eq!(p.part_sizes().iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn rsb_cost_estimate_dwarfs_rcb() {
        let g = shuffled_grid(10);
        let rsb_cost = RsbPartitioner::default().cost_estimate(&g, 8);
        let rcb_cost = crate::rcb::RcbPartitioner.cost_estimate(&g, 8);
        assert!(
            rsb_cost > 10.0 * rcb_cost,
            "RSB {rsb_cost} should be much more expensive than RCB {rcb_cost}"
        );
    }

    #[test]
    fn rsb_handles_disconnected_graphs() {
        // Two components with no bridge at all.
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10u32 {
                e1.push(i);
                e2.push(j);
                e1.push(10 + i);
                e2.push(10 + j);
            }
        }
        let g = GeoColBuilder::new(20).link(e1, e2).build().unwrap();
        let p = RsbPartitioner::default().partition(&g, 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(q.edge_cut, 0);
    }

    #[test]
    fn rsb_is_deterministic() {
        let g = shuffled_grid(8);
        let a = RsbPartitioner::default().partition(&g, 4);
        let b = RsbPartitioner::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn rsb_scans_are_rank_count_independent() {
        // The whole point of the map/block scan structure: chunking the
        // scans over any number of ranks must not change a single bit of
        // the partitioning, so the pure partition() is an exact oracle for
        // every backend. Swept over multiway counts and a disconnected
        // graph.
        let g = shuffled_grid(14);
        for nparts in [2, 4, 7] {
            let serial = RsbPartitioner::default().partition(&g, nparts);
            for nranks in [2, 3, 5, 16, 64] {
                let chunked = RsbPartitioner::default().partition_with_scans(
                    &g,
                    nparts,
                    &mut SerialScans { nranks },
                );
                assert_eq!(serial, chunked, "nparts={nparts} nranks={nranks}");
            }
        }
        let disconnected = {
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            for i in 0..30u32 {
                if i % 15 != 14 {
                    e1.push(i);
                    e2.push(i + 1);
                }
            }
            GeoColBuilder::new(30).link(e1, e2).build().unwrap()
        };
        let serial = RsbPartitioner::default().partition(&disconnected, 4);
        for nranks in [3, 8] {
            let chunked = RsbPartitioner::default().partition_with_scans(
                &disconnected,
                4,
                &mut SerialScans { nranks },
            );
            assert_eq!(serial, chunked);
        }
    }

    #[test]
    #[should_panic(expected = "LINK")]
    fn rsb_requires_connectivity() {
        let g = GeoColBuilder::new(4)
            .geometry(vec![vec![0.0; 4]])
            .build()
            .unwrap();
        let _ = RsbPartitioner::default().partition(&g, 2);
    }
}
