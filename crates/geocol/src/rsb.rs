//! Recursive spectral bisection (Simon) — the connectivity-based partitioner
//! used in the paper's Table 2 ("a parallelized version of Simon's
//! eigenvalue partitioner").
//!
//! Each recursion level computes an approximation to the **Fiedler vector**
//! (the eigenvector of the graph Laplacian belonging to the second-smallest
//! eigenvalue) of the current subgraph and splits the vertices at the
//! load-weighted median of their Fiedler components. The Fiedler vector is
//! obtained with power iteration on the spectrally shifted matrix
//! `B = cI − L` (`c` = a bound on the largest Laplacian eigenvalue), with the
//! constant vector deflated away, which avoids any external linear-algebra
//! dependency while keeping the characteristic behaviour the paper reports:
//! much higher partitioning cost than coordinate bisection, in exchange for
//! the lowest edge cut / fastest executor.

use crate::geocol::GeoCoL;
use crate::partition::{Partitioner, Partitioning};

/// Recursive spectral bisection partitioner.
#[derive(Debug, Clone, Copy)]
pub struct RsbPartitioner {
    /// Power-iteration steps per bisection level.
    pub power_iterations: usize,
    /// Convergence tolerance on the change of the Rayleigh quotient.
    pub tolerance: f64,
}

impl Default for RsbPartitioner {
    fn default() -> Self {
        RsbPartitioner {
            power_iterations: 200,
            tolerance: 1e-7,
        }
    }
}

impl Partitioner for RsbPartitioner {
    fn name(&self) -> &'static str {
        "RSB"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        assert!(
            geocol.has_connectivity(),
            "RSB requires a LINK (connectivity) section in the GeoCoL structure"
        );
        let n = geocol.nvertices();
        let mut owners = vec![0u32; n];
        if n == 0 || nparts == 1 {
            return Partitioning::new(owners, nparts);
        }
        let mut vertices: Vec<u32> = (0..n as u32).collect();
        self.bisect(geocol, &mut vertices, 0, nparts, &mut owners);
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Each power-iteration step touches every edge of the subgraph; the
        // subgraphs at one recursion level cover the whole graph, so a level
        // costs ~ iterations * (n + 2e). This is what makes RSB one to two
        // orders of magnitude more expensive than RCB, matching the paper's
        // Table 2 (258 s vs 1.6 s on the 53K mesh).
        let levels = (nparts.max(2) as f64).log2().ceil();
        self.power_iterations as f64
            * (geocol.nvertices() as f64 + 2.0 * geocol.nedges() as f64)
            * levels
    }
}

impl RsbPartitioner {
    fn bisect(
        &self,
        geocol: &GeoCoL,
        vertices: &mut [u32],
        part_lo: usize,
        nparts: usize,
        owners: &mut [u32],
    ) {
        if nparts <= 1 || vertices.len() <= 1 {
            for &v in vertices.iter() {
                owners[v as usize] = part_lo as u32;
            }
            return;
        }

        let fiedler = self.fiedler_vector(geocol, vertices);

        // Sort by Fiedler component (ties by vertex id for determinism).
        let mut order: Vec<usize> = (0..vertices.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            fiedler[a]
                .partial_cmp(&fiedler[b])
                .unwrap()
                .then(vertices[a].cmp(&vertices[b]))
        });
        let sorted: Vec<u32> = order.iter().map(|&i| vertices[i]).collect();
        vertices.copy_from_slice(&sorted);

        let left_parts = nparts / 2;
        let right_parts = nparts - left_parts;
        let total_load: f64 = vertices
            .iter()
            .map(|&v| geocol.vertex_load(v as usize))
            .sum();
        let target_left = total_load * left_parts as f64 / nparts as f64;
        let mut acc = 0.0;
        let mut split = 0usize;
        for (i, &v) in vertices.iter().enumerate() {
            acc += geocol.vertex_load(v as usize);
            split = i + 1;
            if acc >= target_left {
                break;
            }
        }
        split = split.clamp(1, vertices.len() - 1);

        let (left, right) = vertices.split_at_mut(split);
        self.bisect(geocol, left, part_lo, left_parts, owners);
        self.bisect(geocol, right, part_lo + left_parts, right_parts, owners);
    }

    /// Approximate Fiedler vector of the subgraph induced by `vertices`,
    /// indexed by position within `vertices`.
    fn fiedler_vector(&self, geocol: &GeoCoL, vertices: &[u32]) -> Vec<f64> {
        let m = vertices.len();
        // Local index lookup.
        let mut local = vec![usize::MAX; geocol.nvertices()];
        for (i, &v) in vertices.iter().enumerate() {
            local[v as usize] = i;
        }
        // Induced adjacency (local indices) and degrees.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (i, &v) in vertices.iter().enumerate() {
            for &n in geocol.neighbors(v as usize) {
                let l = local[n as usize];
                if l != usize::MAX {
                    adj[i].push(l as u32);
                }
            }
        }
        let max_degree = adj.iter().map(Vec::len).max().unwrap_or(0) as f64;
        // Shift so that B = cI - L is positive semi-definite with the Fiedler
        // direction as its second-largest eigenvector; c = 2*max_degree + 1
        // comfortably bounds the Laplacian spectrum.
        let c = 2.0 * max_degree + 1.0;

        // Deterministic pseudo-random start vector, orthogonal to 1.
        let mut x: Vec<f64> = (0..m)
            .map(|i| {
                let v = vertices[i] as u64;
                let h = v.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(31);
                (h % 10_000) as f64 / 10_000.0 - 0.5
            })
            .collect();
        deflate_constant(&mut x);
        normalize(&mut x);

        let mut prev_rayleigh = f64::INFINITY;
        for _ in 0..self.power_iterations {
            // y = B x = c*x - L x = c*x - (deg(v)*x[v] - sum_neigh x[u])
            let mut y = vec![0.0; m];
            for i in 0..m {
                let deg = adj[i].len() as f64;
                let mut s = (c - deg) * x[i];
                for &n in &adj[i] {
                    s += x[n as usize];
                }
                y[i] = s;
            }
            deflate_constant(&mut y);
            let norm = normalize(&mut y);
            if norm < 1e-30 {
                // Graph is (near-)complete or degenerate; keep current x.
                break;
            }
            // Rayleigh quotient of L: lambda = c - x^T B x (x normalized).
            let rayleigh: f64 = c - dot(&y, &x) * norm;
            x = y;
            if (rayleigh - prev_rayleigh).abs() < self.tolerance {
                break;
            }
            prev_rayleigh = rayleigh;
        }
        x
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Remove the component along the constant vector (the trivial Laplacian
/// eigenvector).
fn deflate_constant(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

/// Normalize to unit length, returning the pre-normalization norm.
fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-30 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockPartitioner;
    use crate::geocol::GeoColBuilder;
    use crate::metrics::PartitionQuality;

    /// Two dense clusters joined by a single bridge edge. The spectral split
    /// must find the bridge.
    fn dumbbell(cluster: usize) -> GeoCoL {
        let n = 2 * cluster;
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for c in 0..2 {
            let base = (c * cluster) as u32;
            for i in 0..cluster as u32 {
                for j in (i + 1)..cluster as u32 {
                    e1.push(base + i);
                    e2.push(base + j);
                }
            }
        }
        // The bridge.
        e1.push(0);
        e2.push(cluster as u32);
        GeoColBuilder::new(n).link(e1, e2).build().unwrap()
    }

    #[test]
    fn rsb_finds_the_bridge_in_a_dumbbell() {
        let g = dumbbell(12);
        let p = RsbPartitioner::default().partition(&g, 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(
            q.edge_cut, 1,
            "spectral bisection should cut only the bridge"
        );
        assert_eq!(q.load_imbalance, 1.0);
    }

    /// 2-D grid with vertices renumbered so that BLOCK performs poorly.
    fn shuffled_grid(side: usize) -> GeoCoL {
        let n = side * side;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = 99u64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    e1.push(perm[v] as u32);
                    e2.push(perm[v + 1] as u32);
                }
                if r + 1 < side {
                    e1.push(perm[v] as u32);
                    e2.push(perm[v + side] as u32);
                }
            }
        }
        GeoColBuilder::new(n).link(e1, e2).build().unwrap()
    }

    #[test]
    fn rsb_beats_block_on_shuffled_grid() {
        let g = shuffled_grid(12);
        let rsb = PartitionQuality::evaluate(&g, &RsbPartitioner::default().partition(&g, 4));
        let block = PartitionQuality::evaluate(&g, &BlockPartitioner.partition(&g, 4));
        assert!(
            (rsb.edge_cut as f64) < 0.6 * block.edge_cut as f64,
            "RSB cut {} vs BLOCK cut {}",
            rsb.edge_cut,
            block.edge_cut
        );
        assert!(rsb.load_imbalance <= 1.1);
    }

    #[test]
    fn rsb_multiway_is_balanced() {
        let g = shuffled_grid(10);
        for nparts in [4, 8, 6] {
            let p = RsbPartitioner::default().partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert!(
                q.load_imbalance <= 1.3,
                "nparts={nparts} imbalance {}",
                q.load_imbalance
            );
            assert_eq!(p.part_sizes().iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn rsb_cost_estimate_dwarfs_rcb() {
        let g = shuffled_grid(10);
        let rsb_cost = RsbPartitioner::default().cost_estimate(&g, 8);
        let rcb_cost = crate::rcb::RcbPartitioner.cost_estimate(&g, 8);
        assert!(
            rsb_cost > 10.0 * rcb_cost,
            "RSB {rsb_cost} should be much more expensive than RCB {rcb_cost}"
        );
    }

    #[test]
    fn rsb_handles_disconnected_graphs() {
        // Two components with no bridge at all.
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10u32 {
                e1.push(i);
                e2.push(j);
                e1.push(10 + i);
                e2.push(10 + j);
            }
        }
        let g = GeoColBuilder::new(20).link(e1, e2).build().unwrap();
        let p = RsbPartitioner::default().partition(&g, 2);
        let q = PartitionQuality::evaluate(&g, &p);
        assert_eq!(q.edge_cut, 0);
    }

    #[test]
    fn rsb_is_deterministic() {
        let g = shuffled_grid(8);
        let a = RsbPartitioner::default().partition(&g, 4);
        let b = RsbPartitioner::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "LINK")]
    fn rsb_requires_connectivity() {
        let g = GeoColBuilder::new(4)
            .geometry(vec![vec![0.0; 4]])
            .build()
            .unwrap();
        let _ = RsbPartitioner::default().partition(&g, 2);
    }
}
