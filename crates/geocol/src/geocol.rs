//! The GeoCoL (GEOmetry / COnnectivity / Load) interface data structure.
//!
//! A GeoCoL graph has `n` vertices (one per distributed-array element of the
//! decomposition being partitioned) and any combination of
//!
//! * **geometry** — `dim`-dimensional spatial coordinates per vertex
//!   (`GEOMETRY(dim, xcord, ycord, zcord)` in the paper's directive),
//! * **connectivity** — undirected edges given as two endpoint lists
//!   (`LINK(E, edge_list1, edge_list2)`),
//! * **load** — a per-vertex computational weight (`LOAD(weight)`).
//!
//! The builder mirrors the directive: start from the vertex count and add
//! whichever sections the program supplies.

use serde::{Deserialize, Serialize};

/// Errors produced while assembling or validating a GeoCoL structure.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoColError {
    /// A coordinate array's length does not match the vertex count.
    GeometryLengthMismatch {
        /// Which coordinate axis (0 = x, 1 = y, ...).
        axis: usize,
        /// Supplied length.
        got: usize,
        /// Expected length (the vertex count).
        expected: usize,
    },
    /// The load array's length does not match the vertex count.
    LoadLengthMismatch {
        /// Supplied length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// The two edge endpoint lists have different lengths.
    EdgeListLengthMismatch {
        /// Length of the first endpoint list.
        left: usize,
        /// Length of the second endpoint list.
        right: usize,
    },
    /// An edge endpoint refers to a vertex that does not exist.
    EdgeOutOfRange {
        /// Index of the offending edge.
        edge: usize,
        /// The endpoint value.
        vertex: usize,
        /// Number of vertices.
        nvertices: usize,
    },
    /// A vertex load is negative or non-finite.
    InvalidLoad {
        /// Offending vertex.
        vertex: usize,
        /// The load value.
        value: f64,
    },
    /// The structure has no information at all to partition on.
    Empty,
}

impl std::fmt::Display for GeoColError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoColError::GeometryLengthMismatch {
                axis,
                got,
                expected,
            } => write!(
                f,
                "geometry axis {axis} has {got} coordinates but the GeoCoL has {expected} vertices"
            ),
            GeoColError::LoadLengthMismatch { got, expected } => write!(
                f,
                "load array has {got} entries but the GeoCoL has {expected} vertices"
            ),
            GeoColError::EdgeListLengthMismatch { left, right } => write!(
                f,
                "edge endpoint lists have different lengths ({left} vs {right})"
            ),
            GeoColError::EdgeOutOfRange {
                edge,
                vertex,
                nvertices,
            } => write!(
                f,
                "edge {edge} references vertex {vertex} but only {nvertices} vertices exist"
            ),
            GeoColError::InvalidLoad { vertex, value } => {
                write!(f, "vertex {vertex} has invalid load {value}")
            }
            GeoColError::Empty => write!(
                f,
                "GeoCoL has neither geometry, connectivity nor load information"
            ),
        }
    }
}

impl std::error::Error for GeoColError {}

/// The GeoCoL interface data structure handed to partitioners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoCoL {
    nvertices: usize,
    /// Coordinates stored axis-major: `coords[axis][vertex]`.
    coords: Vec<Vec<f64>>,
    /// Per-vertex computational load; `None` means unit loads.
    load: Option<Vec<f64>>,
    /// Undirected edges (deduplicated, self-loops removed).
    edges: Vec<(u32, u32)>,
    /// CSR adjacency built lazily from the edges.
    adj_offsets: Vec<usize>,
    adj_targets: Vec<u32>,
}

impl GeoCoL {
    /// Number of vertices.
    #[inline]
    pub fn nvertices(&self) -> usize {
        self.nvertices
    }

    /// Number of (undirected, deduplicated) edges.
    #[inline]
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Dimensionality of the geometry section (0 when absent).
    #[inline]
    pub fn geometry_dim(&self) -> usize {
        self.coords.len()
    }

    /// True when spatial coordinates are available.
    #[inline]
    pub fn has_geometry(&self) -> bool {
        !self.coords.is_empty()
    }

    /// True when connectivity (edges) is available.
    #[inline]
    pub fn has_connectivity(&self) -> bool {
        !self.edges.is_empty()
    }

    /// True when an explicit load array was supplied.
    #[inline]
    pub fn has_load(&self) -> bool {
        self.load.is_some()
    }

    /// Coordinate of `vertex` along `axis`.
    #[inline]
    pub fn coord(&self, axis: usize, vertex: usize) -> f64 {
        self.coords[axis][vertex]
    }

    /// All coordinates along `axis`.
    #[inline]
    pub fn axis(&self, axis: usize) -> &[f64] {
        &self.coords[axis]
    }

    /// Computational load of `vertex` (1.0 when no load array was given).
    #[inline]
    pub fn vertex_load(&self, vertex: usize) -> f64 {
        match &self.load {
            Some(l) => l[vertex],
            None => 1.0,
        }
    }

    /// Total load over a set of vertices.
    pub fn total_load_of(&self, vertices: &[u32]) -> f64 {
        vertices.iter().map(|&v| self.vertex_load(v as usize)).sum()
    }

    /// Total load over all vertices.
    pub fn total_load(&self) -> f64 {
        match &self.load {
            Some(l) => l.iter().sum(),
            None => self.nvertices as f64,
        }
    }

    /// The undirected edge list.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbours of `vertex` (from the CSR adjacency).
    #[inline]
    pub fn neighbors(&self, vertex: usize) -> &[u32] {
        &self.adj_targets[self.adj_offsets[vertex]..self.adj_offsets[vertex + 1]]
    }

    /// Degree of `vertex`.
    #[inline]
    pub fn degree(&self, vertex: usize) -> usize {
        self.adj_offsets[vertex + 1] - self.adj_offsets[vertex]
    }

    /// Approximate memory footprint in 8-byte words, used by the runtime to
    /// charge the cost of generating and shipping the GeoCoL structure.
    pub fn size_words(&self) -> usize {
        self.nvertices * self.coords.len()
            + self.load.as_ref().map(|l| l.len()).unwrap_or(0)
            + 2 * self.edges.len()
    }
}

/// Builder mirroring the `CONSTRUCT` directive.
#[derive(Debug, Clone, Default)]
pub struct GeoColBuilder {
    nvertices: usize,
    coords: Vec<Vec<f64>>,
    load: Option<Vec<f64>>,
    edge_lists: Option<(Vec<u32>, Vec<u32>)>,
}

impl GeoColBuilder {
    /// Start a GeoCoL with `nvertices` vertices
    /// (`CONSTRUCT G (nvertices, ...)`).
    pub fn new(nvertices: usize) -> Self {
        GeoColBuilder {
            nvertices,
            ..Default::default()
        }
    }

    /// Add spatial coordinates, one `Vec` per axis
    /// (`GEOMETRY(dim, xcord, ycord, zcord)`).
    pub fn geometry(mut self, axes: Vec<Vec<f64>>) -> Self {
        self.coords = axes;
        self
    }

    /// Add per-vertex computational loads (`LOAD(weight)`).
    pub fn load(mut self, load: Vec<f64>) -> Self {
        self.load = Some(load);
        self
    }

    /// Add connectivity as two endpoint lists
    /// (`LINK(E, edge_list1, edge_list2)`).
    pub fn link(mut self, endpoints1: Vec<u32>, endpoints2: Vec<u32>) -> Self {
        self.edge_lists = Some((endpoints1, endpoints2));
        self
    }

    /// Add connectivity from an explicit edge list.
    pub fn link_edges(self, edges: &[(u32, u32)]) -> Self {
        let (a, b): (Vec<u32>, Vec<u32>) = edges.iter().copied().unzip();
        self.link(a, b)
    }

    /// Validate and build the GeoCoL structure.
    pub fn build(self) -> Result<GeoCoL, GeoColError> {
        let n = self.nvertices;
        for (axis, c) in self.coords.iter().enumerate() {
            if c.len() != n {
                return Err(GeoColError::GeometryLengthMismatch {
                    axis,
                    got: c.len(),
                    expected: n,
                });
            }
        }
        if let Some(l) = &self.load {
            if l.len() != n {
                return Err(GeoColError::LoadLengthMismatch {
                    got: l.len(),
                    expected: n,
                });
            }
            for (vertex, &value) in l.iter().enumerate() {
                if !value.is_finite() || value < 0.0 {
                    return Err(GeoColError::InvalidLoad { vertex, value });
                }
            }
        }

        let mut edges: Vec<(u32, u32)> = Vec::new();
        if let Some((e1, e2)) = &self.edge_lists {
            if e1.len() != e2.len() {
                return Err(GeoColError::EdgeListLengthMismatch {
                    left: e1.len(),
                    right: e2.len(),
                });
            }
            edges.reserve(e1.len());
            for (i, (&a, &b)) in e1.iter().zip(e2.iter()).enumerate() {
                if a as usize >= n {
                    return Err(GeoColError::EdgeOutOfRange {
                        edge: i,
                        vertex: a as usize,
                        nvertices: n,
                    });
                }
                if b as usize >= n {
                    return Err(GeoColError::EdgeOutOfRange {
                        edge: i,
                        vertex: b as usize,
                        nvertices: n,
                    });
                }
                if a == b {
                    continue; // drop self-loops
                }
                edges.push((a.min(b), a.max(b)));
            }
            edges.sort_unstable();
            edges.dedup();
        }

        if self.coords.is_empty() && self.load.is_none() && edges.is_empty() && n > 0 {
            return Err(GeoColError::Empty);
        }

        // Build CSR adjacency.
        let mut degree = vec![0usize; n];
        for &(a, b) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut adj_offsets = Vec::with_capacity(n + 1);
        adj_offsets.push(0usize);
        for d in &degree {
            adj_offsets.push(adj_offsets.last().unwrap() + d);
        }
        let mut cursor = adj_offsets.clone();
        let mut adj_targets = vec![0u32; 2 * edges.len()];
        for &(a, b) in &edges {
            adj_targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            adj_targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..n {
            adj_targets[adj_offsets[v]..adj_offsets[v + 1]].sort_unstable();
        }

        Ok(GeoCoL {
            nvertices: n,
            coords: self.coords,
            load: self.load,
            edges,
            adj_offsets,
            adj_targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_graph() -> GeoCoL {
        // 0 - 1 - 2 - 3 path plus an extra 0-2 edge
        GeoColBuilder::new(4)
            .link(vec![0, 1, 2, 0], vec![1, 2, 3, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_csr_adjacency() {
        let g = simple_graph();
        assert_eq!(g.nvertices(), 4);
        assert_eq!(g.nedges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(3), 1);
        assert!(!g.has_geometry());
        assert!(g.has_connectivity());
    }

    #[test]
    fn deduplicates_and_drops_self_loops() {
        let g = GeoColBuilder::new(3)
            .link(vec![0, 1, 0, 2], vec![1, 0, 0, 2])
            .build()
            .unwrap();
        assert_eq!(g.nedges(), 1);
        assert_eq!(g.edges(), &[(0, 1)]);
    }

    #[test]
    fn geometry_and_load_sections() {
        let g = GeoColBuilder::new(3)
            .geometry(vec![vec![0.0, 1.0, 2.0], vec![0.0, 0.5, 1.0]])
            .load(vec![1.0, 2.0, 3.0])
            .build()
            .unwrap();
        assert_eq!(g.geometry_dim(), 2);
        assert_eq!(g.coord(1, 2), 1.0);
        assert_eq!(g.vertex_load(1), 2.0);
        assert_eq!(g.total_load(), 6.0);
        assert_eq!(g.total_load_of(&[0, 2]), 4.0);
    }

    #[test]
    fn default_load_is_unit() {
        let g = simple_graph();
        assert_eq!(g.vertex_load(0), 1.0);
        assert_eq!(g.total_load(), 4.0);
    }

    #[test]
    fn rejects_mismatched_geometry() {
        let err = GeoColBuilder::new(3)
            .geometry(vec![vec![0.0, 1.0]])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GeoColError::GeometryLengthMismatch {
                axis: 0,
                got: 2,
                expected: 3
            }
        ));
        assert!(err.to_string().contains("axis 0"));
    }

    #[test]
    fn rejects_mismatched_load_and_bad_values() {
        let err = GeoColBuilder::new(2).load(vec![1.0]).build().unwrap_err();
        assert!(matches!(err, GeoColError::LoadLengthMismatch { .. }));
        let err = GeoColBuilder::new(2)
            .load(vec![1.0, -3.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, GeoColError::InvalidLoad { vertex: 1, .. }));
        let err = GeoColBuilder::new(2)
            .load(vec![1.0, f64::NAN])
            .build()
            .unwrap_err();
        assert!(matches!(err, GeoColError::InvalidLoad { .. }));
    }

    #[test]
    fn rejects_bad_edges() {
        let err = GeoColBuilder::new(2)
            .link(vec![0, 1], vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(err, GeoColError::EdgeListLengthMismatch { .. }));
        let err = GeoColBuilder::new(2)
            .link(vec![0, 5], vec![1, 1])
            .build()
            .unwrap_err();
        assert!(matches!(err, GeoColError::EdgeOutOfRange { vertex: 5, .. }));
    }

    #[test]
    fn rejects_completely_empty() {
        let err = GeoColBuilder::new(10).build().unwrap_err();
        assert_eq!(err, GeoColError::Empty);
        // But an empty zero-vertex GeoCoL is fine (degenerate).
        assert!(GeoColBuilder::new(0).build().is_ok());
    }

    #[test]
    fn link_edges_helper_matches_link() {
        let a = GeoColBuilder::new(4)
            .link_edges(&[(0, 1), (2, 3)])
            .build()
            .unwrap();
        let b = GeoColBuilder::new(4)
            .link(vec![0, 2], vec![1, 3])
            .build()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn size_words_accounts_for_sections() {
        let g = GeoColBuilder::new(3)
            .geometry(vec![vec![0.0; 3], vec![0.0; 3], vec![0.0; 3]])
            .load(vec![1.0; 3])
            .link(vec![0, 1], vec![1, 2])
            .build()
            .unwrap();
        assert_eq!(g.size_words(), 9 + 3 + 4);
    }
}
