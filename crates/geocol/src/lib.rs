//! # chaos-geocol — the GeoCoL data structure and data partitioners
//!
//! The paper's first contribution is a mechanism that lets a compiler couple
//! *data partitioners* to irregular applications through a standardized
//! interface data structure called **GeoCoL** (GEOmetry, COnnectivity,
//! Load). A `CONSTRUCT` directive names the program arrays holding spatial
//! coordinates (`GEOMETRY`), graph edges (`LINK`) and per-vertex work
//! estimates (`LOAD`); the runtime assembles a GeoCoL graph from them and
//! hands it to a user-selected partitioner.
//!
//! This crate provides:
//!
//! * [`GeoCoL`] and [`GeoColBuilder`] — the interface data structure,
//! * [`Partitioning`] — the result (an owner per vertex) plus quality
//!   metrics (edge cut, load imbalance, boundary vertices),
//! * the partitioner library the paper's users choose from:
//!   * [`BlockPartitioner`] / [`CyclicPartitioner`] — the regular HPF
//!     distributions used as baselines (Table 4),
//!   * [`RcbPartitioner`] — recursive (binary) coordinate bisection
//!     (Berger & Bokhari), the geometry-based partitioner of Tables 2–3,
//!   * [`InertialPartitioner`] — recursive inertial bisection,
//!   * [`RsbPartitioner`] — recursive spectral bisection (Simon), the
//!     connectivity-based partitioner of Table 2,
//!   * [`RandomPartitioner`] — a worst-case strawman used in tests and
//!     ablation benches,
//! * a string-keyed [`registry`] so the `SET distfmt BY PARTITIONING G
//!   USING RSB` directive can look partitioners up by name.
//!
//! # Rank-parallel partitioner passes
//!
//! The real PARTI/CHAOS partitioners ran data-parallel on the nodes, and so
//! do the expensive ones here: partitioners that implement
//! [`Partitioner::partition_with_scans`] express their per-vertex passes
//! against the object-safe [`RankScans`] executor, which the runtime's
//! mapper coupler backs with the SPMD `Backend` — one chunk per virtual
//! processor, compute charged to that rank's clock and deducted from
//! [`Partitioner::cost_estimate`]'s lump sum. Two conventions ([`map_scan`]
//! for elementwise passes, [`block_scan`] for fixed-size-block reductions)
//! make every scan independent of the rank count, so the pure
//! [`Partitioner::partition`] entry point is a bit-exact oracle for any
//! backend-driven run. Current status:
//!
//! | partitioner | rank-parallel passes | driver-side remainder |
//! |---|---|---|
//! | [`RsbPartitioner`] | power-iteration matvec, moment reductions, deflate/normalize | induced-CSR setup, median sort |
//! | [`RcbPartitioner`] | extents + load scan, histogram median scan | boundary-bucket select, below-cutoff sorts |
//! | [`InertialPartitioner`] | mean + covariance moment scans | `dim × dim` power iteration, projection sort |
//! | [`BlockPartitioner`] / [`CyclicPartitioner`] / [`RandomPartitioner`] | — (O(n) arithmetic, charged as lump sum) | everything |
//! | [`KlRefinedPartitioner`] | inherits its base partitioner's scans | the KL/FM refinement pass |
//!
//! The remaining driver-side cost of each partitioner is still charged to
//! the simulated machine through the cost estimate, preserving the paper's
//! Table 2 ordering (RSB orders of magnitude above RCB). See
//! `ARCHITECTURE.md` § "Rank-parallel partitioners" for the system-level
//! picture.

#![warn(missing_docs)]

pub mod block;
pub mod geocol;
pub mod inertial;
pub mod kl;
pub mod metrics;
pub mod partition;
pub mod rcb;
pub mod registry;
pub mod rsb;

pub use block::{BlockPartitioner, CyclicPartitioner, RandomPartitioner};
pub use geocol::{GeoCoL, GeoColBuilder, GeoColError};
pub use inertial::InertialPartitioner;
pub use kl::{refine as kl_refine, KlOptions, KlRefinedPartitioner};
pub use metrics::PartitionQuality;
pub use partition::{
    block_scan, map_scan, scan_chunk, Partitioner, Partitioning, RangeKernel, RankScans,
    ScanKernel, SerialScans, SCAN_BLOCK,
};
pub use rcb::{RcbPartitioner, SORT_CUTOFF};
pub use registry::{partitioner_by_name, registered_partitioner_names};
pub use rsb::RsbPartitioner;
