//! # chaos-geocol — the GeoCoL data structure and data partitioners
//!
//! The paper's first contribution is a mechanism that lets a compiler couple
//! *data partitioners* to irregular applications through a standardized
//! interface data structure called **GeoCoL** (GEOmetry, COnnectivity,
//! Load). A `CONSTRUCT` directive names the program arrays holding spatial
//! coordinates (`GEOMETRY`), graph edges (`LINK`) and per-vertex work
//! estimates (`LOAD`); the runtime assembles a GeoCoL graph from them and
//! hands it to a user-selected partitioner.
//!
//! This crate provides:
//!
//! * [`GeoCoL`] and [`GeoColBuilder`] — the interface data structure,
//! * [`Partitioning`] — the result (an owner per vertex) plus quality
//!   metrics (edge cut, load imbalance, boundary vertices),
//! * the partitioner library the paper's users choose from:
//!   * [`BlockPartitioner`] / [`CyclicPartitioner`] — the regular HPF
//!     distributions used as baselines (Table 4),
//!   * [`RcbPartitioner`] — recursive (binary) coordinate bisection
//!     (Berger & Bokhari), the geometry-based partitioner of Tables 2–3,
//!   * [`InertialPartitioner`] — recursive inertial bisection,
//!   * [`RsbPartitioner`] — recursive spectral bisection (Simon), the
//!     connectivity-based partitioner of Table 2,
//!   * [`RandomPartitioner`] — a worst-case strawman used in tests and
//!     ablation benches,
//! * a string-keyed [`registry`] so the `SET distfmt BY PARTITIONING G
//!   USING RSB` directive can look partitioners up by name.
//!
//! Partitioners here are sequential graph algorithms; the CHAOS runtime
//! charges their *modeled parallel* cost when it invokes them on the
//! simulated machine (see `chaos-runtime`'s mapper coupler).

#![warn(missing_docs)]

pub mod block;
pub mod geocol;
pub mod inertial;
pub mod kl;
pub mod metrics;
pub mod partition;
pub mod rcb;
pub mod registry;
pub mod rsb;

pub use block::{BlockPartitioner, CyclicPartitioner, RandomPartitioner};
pub use geocol::{GeoCoL, GeoColBuilder, GeoColError};
pub use inertial::InertialPartitioner;
pub use kl::{refine as kl_refine, KlOptions, KlRefinedPartitioner};
pub use metrics::PartitionQuality;
pub use partition::{scan_chunk, Partitioner, Partitioning, RankScans, ScanKernel, SerialScans};
pub use rcb::RcbPartitioner;
pub use registry::{partitioner_by_name, registered_partitioner_names};
pub use rsb::RsbPartitioner;
