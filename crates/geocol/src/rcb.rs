//! Recursive (binary) coordinate bisection — the geometry-based partitioner
//! of Berger & Bokhari used throughout the paper's Tables 2 and 3
//! ("recursive binary dissection" / "coordinate bisection").
//!
//! At each level the current vertex set is split along the coordinate axis
//! with the largest extent, at the weighted median, so that the two halves
//! carry (approximately) the target fraction of the computational load.
//! Recursion continues until every group corresponds to one part. Part counts
//! that are not powers of two are handled by splitting the target part range
//! unevenly and weighting the median accordingly.

use crate::geocol::GeoCoL;
use crate::partition::{Partitioner, Partitioning};

/// Recursive coordinate bisection partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcbPartitioner;

impl Partitioner for RcbPartitioner {
    fn name(&self) -> &'static str {
        "RCB"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        assert!(
            geocol.has_geometry(),
            "RCB requires a GEOMETRY section in the GeoCoL structure"
        );
        let n = geocol.nvertices();
        let mut owners = vec![0u32; n];
        if n == 0 || nparts == 1 {
            return Partitioning::new(owners, nparts);
        }
        let mut vertices: Vec<u32> = (0..n as u32).collect();
        bisect(geocol, &mut vertices, 0, nparts, &mut owners);
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Each level sorts the active set along one axis: O(n log n) per
        // level, log2(nparts) levels.
        let n = geocol.nvertices().max(2) as f64;
        let levels = (nparts.max(2) as f64).log2().ceil();
        n * n.log2() * levels
    }
}

/// Recursively assign `vertices` to parts `part_lo .. part_lo + nparts`.
fn bisect(
    geocol: &GeoCoL,
    vertices: &mut [u32],
    part_lo: usize,
    nparts: usize,
    owners: &mut [u32],
) {
    if nparts <= 1 || vertices.len() <= 1 {
        for &v in vertices.iter() {
            owners[v as usize] = part_lo as u32;
        }
        // A degenerate split (more parts than vertices) leaves the extra
        // parts empty, which Partitioning tolerates.
        if !vertices.is_empty() && nparts > 1 {
            // keep all on part_lo
        }
        return;
    }

    let axis = widest_axis(geocol, vertices);
    // Sort the active vertices along the chosen axis (ties broken by vertex
    // id for determinism).
    vertices.sort_unstable_by(|&a, &b| {
        let ca = geocol.coord(axis, a as usize);
        let cb = geocol.coord(axis, b as usize);
        ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
    });

    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    let total_load: f64 = vertices
        .iter()
        .map(|&v| geocol.vertex_load(v as usize))
        .sum();
    let target_left = total_load * left_parts as f64 / nparts as f64;

    // Weighted median: find the split point where the prefix load first
    // reaches the target.
    let mut acc = 0.0;
    let mut split = 0usize;
    for (i, &v) in vertices.iter().enumerate() {
        acc += geocol.vertex_load(v as usize);
        if acc >= target_left {
            split = i + 1;
            break;
        }
        split = i + 1;
    }
    // Never produce an empty side unless unavoidable.
    split = split.clamp(1, vertices.len() - 1).min(vertices.len());

    let (left, right) = vertices.split_at_mut(split);
    bisect(geocol, left, part_lo, left_parts, owners);
    bisect(geocol, right, part_lo + left_parts, right_parts, owners);
}

/// The coordinate axis with the largest extent over the given vertex set.
fn widest_axis(geocol: &GeoCoL, vertices: &[u32]) -> usize {
    let dim = geocol.geometry_dim();
    let mut best_axis = 0;
    let mut best_extent = f64::NEG_INFINITY;
    for axis in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in vertices {
            let c = geocol.coord(axis, v as usize);
            lo = lo.min(c);
            hi = hi.max(c);
        }
        let extent = hi - lo;
        if extent > best_extent {
            best_extent = extent;
            best_axis = axis;
        }
    }
    best_axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;
    use crate::metrics::PartitionQuality;

    /// A uniform 2-D grid of `side x side` points with 4-neighbour edges.
    fn grid_geocol(side: usize) -> GeoCoL {
        let n = side * side;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for r in 0..side {
            for c in 0..side {
                xs.push(c as f64);
                ys.push(r as f64);
                let v = (r * side + c) as u32;
                if c + 1 < side {
                    e1.push(v);
                    e2.push(v + 1);
                }
                if r + 1 < side {
                    e1.push(v);
                    e2.push(v + side as u32);
                }
            }
        }
        GeoColBuilder::new(n)
            .geometry(vec![xs, ys])
            .link(e1, e2)
            .build()
            .unwrap()
    }

    #[test]
    fn rcb_balances_a_grid() {
        let g = grid_geocol(16);
        for nparts in [2, 4, 8, 16] {
            let p = RcbPartitioner.partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert!(
                q.load_imbalance <= 1.05,
                "nparts={nparts} imbalance={}",
                q.load_imbalance
            );
            // Geometric partitioning of a grid should cut far fewer edges
            // than a random assignment would (expected ~ (1-1/p) of edges).
            assert!(
                q.cut_fraction() < 0.3,
                "nparts={nparts} cut fraction {}",
                q.cut_fraction()
            );
        }
    }

    #[test]
    fn rcb_beats_block_on_a_shuffled_grid() {
        // Renumber the grid vertices pseudo-randomly: BLOCK now cuts a lot,
        // RCB (which looks at coordinates, not numbering) is unaffected.
        let side = 12;
        let g = grid_geocol(side);
        let n = g.nvertices();
        // Build a permuted copy.
        let perm: Vec<usize> = {
            let mut p: Vec<usize> = (0..n).collect();
            // Deterministic LCG shuffle.
            let mut state = 12345u64;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                p.swap(i, j);
            }
            p
        };
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        for v in 0..n {
            xs[perm[v]] = g.coord(0, v);
            ys[perm[v]] = g.coord(1, v);
        }
        let edges: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|&(a, b)| (perm[a as usize] as u32, perm[b as usize] as u32))
            .collect();
        let shuffled = GeoColBuilder::new(n)
            .geometry(vec![xs, ys])
            .link_edges(&edges)
            .build()
            .unwrap();

        let rcb = PartitionQuality::evaluate(&shuffled, &RcbPartitioner.partition(&shuffled, 8));
        let block = PartitionQuality::evaluate(
            &shuffled,
            &crate::block::BlockPartitioner.partition(&shuffled, 8),
        );
        assert!(
            rcb.edge_cut * 2 < block.edge_cut,
            "RCB cut {} should be well below BLOCK cut {}",
            rcb.edge_cut,
            block.edge_cut
        );
    }

    #[test]
    fn rcb_handles_non_power_of_two_parts() {
        let g = grid_geocol(10);
        for nparts in [3, 5, 6, 7] {
            let p = RcbPartitioner.partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert_eq!(p.nparts(), nparts);
            assert!(
                q.load_imbalance < 1.25,
                "nparts={nparts}: {}",
                q.load_imbalance
            );
            let sizes = p.part_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 100);
            assert!(
                sizes.iter().all(|&s| s > 0),
                "empty part for nparts={nparts}"
            );
        }
    }

    #[test]
    fn rcb_respects_vertex_loads() {
        // Two clusters on a line; the right cluster is 3x heavier per vertex.
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let loads: Vec<f64> = (0..n).map(|i| if i < 20 { 1.0 } else { 3.0 }).collect();
        let g = GeoColBuilder::new(n)
            .geometry(vec![xs])
            .load(loads)
            .build()
            .unwrap();
        let p = RcbPartitioner.partition(&g, 2);
        let loads = p.part_loads(&g);
        let imbalance = loads.iter().cloned().fold(0.0, f64::max) / (g.total_load() / 2.0);
        assert!(imbalance < 1.1, "load-weighted split imbalance {imbalance}");
        // The heavy side should hold fewer vertices.
        let sizes = p.part_sizes();
        assert_ne!(sizes[0], sizes[1]);
    }

    #[test]
    fn rcb_single_part_and_tiny_inputs() {
        let g = grid_geocol(3);
        let p = RcbPartitioner.partition(&g, 1);
        assert!(p.owners().iter().all(|&o| o == 0));
        // More parts than vertices must not panic.
        let tiny = GeoColBuilder::new(2)
            .geometry(vec![vec![0.0, 1.0]])
            .link(vec![0], vec![1])
            .build()
            .unwrap();
        let p = RcbPartitioner.partition(&tiny, 8);
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "GEOMETRY")]
    fn rcb_requires_geometry() {
        let g = GeoColBuilder::new(4)
            .link(vec![0, 1], vec![1, 2])
            .build()
            .unwrap();
        let _ = RcbPartitioner.partition(&g, 2);
    }

    #[test]
    fn rcb_is_deterministic() {
        let g = grid_geocol(9);
        let a = RcbPartitioner.partition(&g, 4);
        let b = RcbPartitioner.partition(&g, 4);
        assert_eq!(a, b);
    }
}
