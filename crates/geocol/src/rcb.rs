//! Recursive (binary) coordinate bisection — the geometry-based partitioner
//! of Berger & Bokhari used throughout the paper's Tables 2 and 3
//! ("recursive binary dissection" / "coordinate bisection").
//!
//! # Algorithm
//!
//! At each level the current vertex set is split along the coordinate axis
//! with the largest extent, at the weighted median, so that the two halves
//! carry (approximately) the target fraction of the computational load.
//! Recursion continues until every group corresponds to one part. Part counts
//! that are not powers of two are handled by splitting the target part range
//! unevenly and weighting the median accordingly.
//!
//! # Rank-parallel structure
//!
//! The per-level passes over the active vertex set run through the
//! [`RankScans`] executor:
//!
//! * **extents + load** — one [`block_scan`] computes per-axis min/max and
//!   the total load as fixed-size-block partials, folded driver-side in
//!   ascending block order (min/max are exact under any grouping; the load
//!   sum is exact because the blocks are fixed);
//! * **median selection** — for large sets, a second [`block_scan`] builds
//!   a per-block **histogram** (count + load per coordinate bucket) over
//!   the chosen axis; the driver then *selects* the bucket containing the
//!   weighted median, sorts only that bucket's members, and walks their
//!   prefix loads — replacing the full `O(m log m)` sort with a
//!   rank-parallel `O(m)` scan plus a driver-side select over one bucket.
//!   Sets at or below [`SORT_CUTOFF`] (and degenerate clouds with zero
//!   extent) use the classic driver-side sort-select instead.
//!
//! Both paths are deterministic and depend only on the input — never on the
//! rank count or engine — so the pure [`Partitioner::partition`] entry point
//! (single-chunk [`SerialScans`]) is an exact oracle for `Machine`,
//! `ThreadedBackend` and `PooledBackend` runs
//! (`tests/backend_equivalence.rs` proptests this).
//!
//! # Charge model
//!
//! Scan-routed work is charged per rank through the coupler's
//! `Backend`-backed executor and deducted from
//! [`Partitioner::cost_estimate`]'s lump sum (`n log n` per level, the
//! classic sort bound), so the cheap geometric partitioner stays one to two
//! orders of magnitude below RSB as in Table 2.

use crate::geocol::GeoCoL;
use crate::partition::{block_scan, Partitioner, Partitioning, RankScans, SerialScans};

/// Active-set size at or below which the weighted median is found by the
/// classic driver-side sort instead of the rank-parallel histogram select.
pub const SORT_CUTOFF: usize = 2048;

/// Number of coordinate buckets in the histogram-select pass.
const NBINS: usize = 128;

/// Recursive coordinate bisection partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcbPartitioner;

impl Partitioner for RcbPartitioner {
    fn name(&self) -> &'static str {
        "RCB"
    }

    fn partition(&self, geocol: &GeoCoL, nparts: usize) -> Partitioning {
        // Single-chunk scans degenerate to the classic sequential folds —
        // and, because every scan is rank-count independent, this is also
        // the bit-exact oracle for every backend-driven run.
        self.partition_with_scans(geocol, nparts, &mut SerialScans::single())
    }

    /// The rank-parallel entry point: the extent/load scans and the
    /// histogram median selection behind every split run through `scans`,
    /// one chunk per rank, so the runtime can execute them through
    /// `Backend::run_compute` while the partitioning stays bit-identical to
    /// [`Partitioner::partition`].
    fn partition_with_scans(
        &self,
        geocol: &GeoCoL,
        nparts: usize,
        scans: &mut dyn RankScans,
    ) -> Partitioning {
        assert!(
            geocol.has_geometry(),
            "RCB requires a GEOMETRY section in the GeoCoL structure"
        );
        let n = geocol.nvertices();
        let mut owners = vec![0u32; n];
        if n == 0 || nparts == 1 {
            return Partitioning::new(owners, nparts);
        }
        let mut vertices: Vec<u32> = (0..n as u32).collect();
        bisect(geocol, &mut vertices, 0, nparts, &mut owners, scans);
        Partitioning::new(owners, nparts)
    }

    fn cost_estimate(&self, geocol: &GeoCoL, nparts: usize) -> f64 {
        // Each level scans the active set along one axis (sort below the
        // cutoff, histogram select above): O(n log n) per level keeps the
        // classic bound, log2(nparts) levels.
        let n = geocol.nvertices().max(2) as f64;
        let levels = (nparts.max(2) as f64).log2().ceil();
        n * n.log2() * levels
    }
}

/// Recursively assign `vertices` to parts `part_lo .. part_lo + nparts`.
fn bisect(
    geocol: &GeoCoL,
    vertices: &mut [u32],
    part_lo: usize,
    nparts: usize,
    owners: &mut [u32],
    scans: &mut dyn RankScans,
) {
    if nparts <= 1 || vertices.len() <= 1 {
        for &v in vertices.iter() {
            owners[v as usize] = part_lo as u32;
        }
        // A degenerate split (more parts than vertices) leaves the extra
        // parts empty, which Partitioning tolerates.
        return;
    }

    let dim = geocol.geometry_dim();
    let m = vertices.len();
    let vs: &[u32] = vertices;

    // Rank-parallel extents + load: per block, [lo, hi] per axis then the
    // block's load sum. min/max fold exactly under any grouping; the load
    // sum folds fixed blocks in ascending order.
    let width = 2 * dim + 1;
    let blocks = block_scan(
        scans,
        m,
        width,
        (2 * dim + 1) as f64,
        &|items, acc: &mut [f64]| {
            for a in 0..dim {
                acc[2 * a] = f64::INFINITY;
                acc[2 * a + 1] = f64::NEG_INFINITY;
            }
            for i in items {
                let v = vs[i] as usize;
                for a in 0..dim {
                    let c = geocol.coord(a, v);
                    acc[2 * a] = acc[2 * a].min(c);
                    acc[2 * a + 1] = acc[2 * a + 1].max(c);
                }
                acc[2 * dim] += geocol.vertex_load(v);
            }
        },
    );
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    let mut total_load = 0.0;
    for b in blocks.chunks_exact(width) {
        for a in 0..dim {
            lo[a] = lo[a].min(b[2 * a]);
            hi[a] = hi[a].max(b[2 * a + 1]);
        }
        total_load += b[2 * dim];
    }
    let mut axis = 0;
    let mut best_extent = f64::NEG_INFINITY;
    for a in 0..dim {
        let extent = hi[a] - lo[a];
        if extent > best_extent {
            best_extent = extent;
            axis = a;
        }
    }

    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    let target_left = total_load * left_parts as f64 / nparts as f64;

    let histogram_usable = m > SORT_CUTOFF && best_extent.is_finite() && best_extent > 0.0;
    let split = if !histogram_usable {
        sort_select(geocol, vertices, axis, target_left)
    } else {
        histogram_select(
            geocol,
            vertices,
            axis,
            lo[axis],
            hi[axis],
            target_left,
            scans,
        )
    };

    let (left, right) = vertices.split_at_mut(split);
    bisect(geocol, left, part_lo, left_parts, owners, scans);
    bisect(
        geocol,
        right,
        part_lo + left_parts,
        right_parts,
        owners,
        scans,
    );
}

/// Classic weighted-median selection: sort the active set along `axis`
/// (ties broken by vertex id) and walk prefix loads until `target_left` is
/// reached. Reorders `vertices` so the left group is `..split`; returns
/// `split`, clamped so neither side is empty.
fn sort_select(geocol: &GeoCoL, vertices: &mut [u32], axis: usize, target_left: f64) -> usize {
    vertices.sort_unstable_by(|&a, &b| {
        let ca = geocol.coord(axis, a as usize);
        let cb = geocol.coord(axis, b as usize);
        ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
    });
    let mut acc = 0.0;
    let mut split = 0usize;
    for (i, &v) in vertices.iter().enumerate() {
        acc += geocol.vertex_load(v as usize);
        split = i + 1;
        if acc >= target_left {
            break;
        }
    }
    split.clamp(1, vertices.len() - 1)
}

/// Rank-parallel weighted-median selection: a per-block histogram scan over
/// `NBINS` coordinate buckets feeds a driver-side select — pick the bucket
/// where the cumulative load first reaches `target_left`, sort only that
/// bucket's members and walk their prefix loads. Reorders `vertices`
/// (stably, preserving the incoming relative order within each side) so the
/// left group is `..split`; returns `split` with neither side empty.
///
/// Every step is a pure function of the input set — bucket boundaries come
/// from the exact `lo`/`hi` extents, partial sums fold fixed blocks — so
/// the result is bit-identical for every rank count and engine, and
/// identical to what a full sort-select over the same bucket walk yields.
fn histogram_select(
    geocol: &GeoCoL,
    vertices: &mut [u32],
    axis: usize,
    lo: f64,
    hi: f64,
    target_left: f64,
    scans: &mut dyn RankScans,
) -> usize {
    let m = vertices.len();
    let inv = NBINS as f64 / (hi - lo);
    let bin_of = |v: u32| -> usize {
        (((geocol.coord(axis, v as usize) - lo) * inv) as usize).min(NBINS - 1)
    };

    // Rank-parallel histogram: per block, [count, load] per bucket.
    let vs: &[u32] = vertices;
    let blocks = block_scan(scans, m, 2 * NBINS, 4.0, &|items, acc: &mut [f64]| {
        for i in items {
            let b = bin_of(vs[i]);
            acc[2 * b] += 1.0;
            acc[2 * b + 1] += geocol.vertex_load(vs[i] as usize);
        }
    });
    let mut counts = [0usize; NBINS];
    let mut loads = [0.0f64; NBINS];
    for block in blocks.chunks_exact(2 * NBINS) {
        for b in 0..NBINS {
            counts[b] += block[2 * b] as usize;
            loads[b] += block[2 * b + 1];
        }
    }

    // Driver-side select: the bucket where the cumulative load first
    // reaches the target (or the last populated bucket if rounding never
    // lets it).
    let mut cum = 0.0;
    let mut boundary = None;
    for (b, &load) in loads.iter().enumerate() {
        cum += load;
        if cum >= target_left {
            boundary = Some(b);
            break;
        }
    }
    let boundary =
        boundary.unwrap_or_else(|| (0..NBINS).rev().find(|&b| counts[b] > 0).unwrap_or(0));
    if counts[boundary] == 0 {
        // Degenerate (e.g. all-zero loads landing in an empty bucket): the
        // histogram cannot refine the split — fall back to the exact sort.
        return sort_select(geocol, vertices, axis, target_left);
    }
    let below_count: usize = counts[..boundary].iter().sum();
    let below_load: f64 = loads[..boundary].iter().sum();

    // Sort only the boundary bucket's members and walk their prefix loads.
    let mut candidates: Vec<u32> = vertices
        .iter()
        .copied()
        .filter(|&v| bin_of(v) == boundary)
        .collect();
    candidates.sort_unstable_by(|&a, &b| {
        let ca = geocol.coord(axis, a as usize);
        let cb = geocol.coord(axis, b as usize);
        ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
    });
    let mut acc = below_load;
    let mut taken = 0usize;
    for &v in &candidates {
        acc += geocol.vertex_load(v as usize);
        taken += 1;
        if acc >= target_left {
            break;
        }
    }
    let split = (below_count + taken).clamp(1, m - 1);
    if split < below_count {
        // The clamp cannot reach back below the boundary bucket (the
        // buckets before it hold at most m-1 vertices), but keep the exact
        // fallback as a safety net.
        return sort_select(geocol, vertices, axis, target_left);
    }
    let taken = split - below_count;

    // Stable two-sided partition: left = buckets below the boundary plus
    // the first `taken` sorted members of the boundary bucket.
    let threshold = if taken == 0 {
        None
    } else {
        let t = candidates[taken - 1];
        Some((geocol.coord(axis, t as usize), t))
    };
    let mut left = Vec::with_capacity(split);
    let mut right = Vec::with_capacity(m - split);
    for &v in vertices.iter() {
        let b = bin_of(v);
        let is_left = match b.cmp(&boundary) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match threshold {
                None => false,
                Some((tc, tv)) => {
                    let c = geocol.coord(axis, v as usize);
                    (c, v) <= (tc, tv)
                }
            },
        };
        if is_left {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    debug_assert_eq!(left.len(), split);
    vertices[..split].copy_from_slice(&left);
    vertices[split..].copy_from_slice(&right);
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocol::GeoColBuilder;
    use crate::metrics::PartitionQuality;

    /// A uniform 2-D grid of `side x side` points with 4-neighbour edges.
    fn grid_geocol(side: usize) -> GeoCoL {
        let n = side * side;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for r in 0..side {
            for c in 0..side {
                xs.push(c as f64);
                ys.push(r as f64);
                let v = (r * side + c) as u32;
                if c + 1 < side {
                    e1.push(v);
                    e2.push(v + 1);
                }
                if r + 1 < side {
                    e1.push(v);
                    e2.push(v + side as u32);
                }
            }
        }
        GeoColBuilder::new(n)
            .geometry(vec![xs, ys])
            .link(e1, e2)
            .build()
            .unwrap()
    }

    #[test]
    fn rcb_balances_a_grid() {
        let g = grid_geocol(16);
        for nparts in [2, 4, 8, 16] {
            let p = RcbPartitioner.partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert!(
                q.load_imbalance <= 1.05,
                "nparts={nparts} imbalance={}",
                q.load_imbalance
            );
            // Geometric partitioning of a grid should cut far fewer edges
            // than a random assignment would (expected ~ (1-1/p) of edges).
            assert!(
                q.cut_fraction() < 0.3,
                "nparts={nparts} cut fraction {}",
                q.cut_fraction()
            );
        }
    }

    #[test]
    fn rcb_beats_block_on_a_shuffled_grid() {
        // Renumber the grid vertices pseudo-randomly: BLOCK now cuts a lot,
        // RCB (which looks at coordinates, not numbering) is unaffected.
        let side = 12;
        let g = grid_geocol(side);
        let n = g.nvertices();
        // Build a permuted copy.
        let perm: Vec<usize> = {
            let mut p: Vec<usize> = (0..n).collect();
            // Deterministic LCG shuffle.
            let mut state = 12345u64;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                p.swap(i, j);
            }
            p
        };
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        for v in 0..n {
            xs[perm[v]] = g.coord(0, v);
            ys[perm[v]] = g.coord(1, v);
        }
        let edges: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|&(a, b)| (perm[a as usize] as u32, perm[b as usize] as u32))
            .collect();
        let shuffled = GeoColBuilder::new(n)
            .geometry(vec![xs, ys])
            .link_edges(&edges)
            .build()
            .unwrap();

        let rcb = PartitionQuality::evaluate(&shuffled, &RcbPartitioner.partition(&shuffled, 8));
        let block = PartitionQuality::evaluate(
            &shuffled,
            &crate::block::BlockPartitioner.partition(&shuffled, 8),
        );
        assert!(
            rcb.edge_cut * 2 < block.edge_cut,
            "RCB cut {} should be well below BLOCK cut {}",
            rcb.edge_cut,
            block.edge_cut
        );
    }

    #[test]
    fn rcb_handles_non_power_of_two_parts() {
        let g = grid_geocol(10);
        for nparts in [3, 5, 6, 7] {
            let p = RcbPartitioner.partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &p);
            assert_eq!(p.nparts(), nparts);
            assert!(
                q.load_imbalance < 1.25,
                "nparts={nparts}: {}",
                q.load_imbalance
            );
            let sizes = p.part_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 100);
            assert!(
                sizes.iter().all(|&s| s > 0),
                "empty part for nparts={nparts}"
            );
        }
    }

    #[test]
    fn rcb_respects_vertex_loads() {
        // Two clusters on a line; the right cluster is 3x heavier per vertex.
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let loads: Vec<f64> = (0..n).map(|i| if i < 20 { 1.0 } else { 3.0 }).collect();
        let g = GeoColBuilder::new(n)
            .geometry(vec![xs])
            .load(loads)
            .build()
            .unwrap();
        let p = RcbPartitioner.partition(&g, 2);
        let loads = p.part_loads(&g);
        let imbalance = loads.iter().cloned().fold(0.0, f64::max) / (g.total_load() / 2.0);
        assert!(imbalance < 1.1, "load-weighted split imbalance {imbalance}");
        // The heavy side should hold fewer vertices.
        let sizes = p.part_sizes();
        assert_ne!(sizes[0], sizes[1]);
    }

    #[test]
    fn rcb_single_part_and_tiny_inputs() {
        let g = grid_geocol(3);
        let p = RcbPartitioner.partition(&g, 1);
        assert!(p.owners().iter().all(|&o| o == 0));
        // More parts than vertices must not panic.
        let tiny = GeoColBuilder::new(2)
            .geometry(vec![vec![0.0, 1.0]])
            .link(vec![0], vec![1])
            .build()
            .unwrap();
        let p = RcbPartitioner.partition(&tiny, 8);
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "GEOMETRY")]
    fn rcb_requires_geometry() {
        let g = GeoColBuilder::new(4)
            .link(vec![0, 1], vec![1, 2])
            .build()
            .unwrap();
        let _ = RcbPartitioner.partition(&g, 2);
    }

    #[test]
    fn rcb_is_deterministic() {
        let g = grid_geocol(9);
        let a = RcbPartitioner.partition(&g, 4);
        let b = RcbPartitioner.partition(&g, 4);
        assert_eq!(a, b);
    }

    /// A large pseudo-random point cloud with per-vertex loads — big enough
    /// that the top bisection levels take the histogram-select path.
    fn random_cloud(n: usize) -> GeoCoL {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut ws = Vec::with_capacity(n);
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            xs.push(next() * 100.0);
            ys.push(next() * 40.0);
            ws.push(0.5 + next());
        }
        GeoColBuilder::new(n)
            .geometry(vec![xs, ys])
            .load(ws)
            .build()
            .unwrap()
    }

    #[test]
    fn rcb_histogram_select_is_rank_count_independent() {
        // Above SORT_CUTOFF the split runs through the rank-parallel
        // histogram; the partitioning must not depend on the rank count in
        // any bit, so the pure partition() is an exact oracle for every
        // backend.
        let g = random_cloud(3 * SORT_CUTOFF);
        for nparts in [2, 4, 6] {
            let serial = RcbPartitioner.partition(&g, nparts);
            let q = PartitionQuality::evaluate(&g, &serial);
            assert!(
                q.load_imbalance <= 1.05,
                "nparts={nparts} imbalance {}",
                q.load_imbalance
            );
            for nranks in [2, 5, 16, 200] {
                let chunked =
                    RcbPartitioner.partition_with_scans(&g, nparts, &mut SerialScans { nranks });
                assert_eq!(serial, chunked, "nparts={nparts} nranks={nranks}");
            }
        }
    }

    #[test]
    fn rcb_histogram_select_matches_full_sort_balance() {
        // The histogram path replaces the full sort; both must land the
        // split at the same weighted-median balance (the sets can differ
        // only among equal-coordinate ties, which a uniform cloud has none
        // of at the top level).
        let g = random_cloud(3 * SORT_CUTOFF);
        let p = RcbPartitioner.partition(&g, 2);
        let loads = p.part_loads(&g);
        let imb = loads.iter().cloned().fold(0.0, f64::max) / (g.total_load() / 2.0);
        assert!(imb < 1.01, "histogram select imbalance {imb}");
    }

    #[test]
    fn rcb_degenerate_coordinates_fall_back_to_sort() {
        // All points coincide: zero extent on every axis must take the
        // sort path regardless of size and still split evenly.
        let n = 3 * SORT_CUTOFF;
        let g = GeoColBuilder::new(n)
            .geometry(vec![vec![1.5; n], vec![-2.0; n]])
            .build()
            .unwrap();
        let p = RcbPartitioner.partition(&g, 2);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), n);
        assert!(sizes.iter().all(|&s| s == n / 2), "sizes {sizes:?}");
    }
}
