//! Offline shim for `rand`.
//!
//! Exposes the trait surface the workload generators use — [`RngCore`],
//! [`Rng`] (with `gen` / `gen_range`), [`SeedableRng`], `rngs::StdRng` and
//! `seq::SliceRandom::shuffle` — backed by SplitMix64. Streams are
//! deterministic per seed, which is all the workspace relies on (generators
//! compare runs against re-runs with the same seed, never against golden
//! values from the real rand crate).

/// Core random source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub(crate) fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG types (`rand::rngs::StdRng`).
pub mod rngs {
    use super::{splitmix_next, RngCore, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix_next(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }
    }
}

/// Sequence helpers (`rand::seq::SliceRandom`).
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
