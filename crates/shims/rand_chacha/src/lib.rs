//! Offline shim for `rand_chacha`: a deterministic `ChaCha8Rng` stand-in
//! implementing the shim `rand` traits. The workload generators only need a
//! seedable deterministic stream, not the actual ChaCha8 permutation (they
//! compare runs against re-runs with the same seed, never against golden
//! values from the real crate).

use rand::{RngCore, SeedableRng};

/// Deterministic stand-in for `rand_chacha::ChaCha8Rng` (xorshift128+).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s0: u64,
    s1: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64 so nearby seeds diverge.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s0 = next();
        let mut s1 = next();
        if s0 == 0 && s1 == 0 {
            s1 = 1;
        }
        ChaCha8Rng { s0, s1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..50).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v = rng.gen::<f64>();
        assert!((0.0..1.0).contains(&v));
    }
}
