//! Offline shim for `serde_json`.
//!
//! Provides a JSON [`Value`] tree, the [`json!`] macro for flat object /
//! array literals, a pretty printer, and the [`ToValue`] conversion trait
//! that replaces derived `Serialize` impls (types that want to appear inside
//! `json!` implement `ToValue` explicitly).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (integers are kept exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Error type mirroring `serde_json::Error` (the shim never fails).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error")
    }
}

impl std::error::Error for Error {}

/// Conversion into a JSON [`Value`] — the shim's stand-in for `Serialize`.
pub trait ToValue {
    /// Convert `self` to a JSON value.
    fn to_value(&self) -> Value;
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

macro_rules! impl_num_to_value {
    ($($t:ty),*) => {
        $(impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        })*
    };
}

impl_num_to_value!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] from a flat JSON literal.
///
/// Supports `{ "key": expr, ... }`, `[ expr, ... ]` and bare expressions;
/// every expression is converted with [`ToValue`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($k.to_string(), $crate::ToValue::to_value(&$v)) ),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToValue::to_value(&$v) ),* ])
    };
    ($v:expr) => { $crate::ToValue::to_value(&$v) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_number(out: &mut String, n: f64) {
    // JSON has no Infinity/NaN literals; serde_json serializes them as null.
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Num(n) => fmt_number(out, *n),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-print any [`ToValue`] as an indented JSON string.
pub fn to_string_pretty<T: ToValue + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Compact single-line rendering.
pub fn to_string<T: ToValue + ?Sized>(value: &T) -> Result<String, Error> {
    fn write_compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => fmt_number(out, *n),
            Value::Str(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    write_compact(out, val);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1, "b": "x", "c": true, "d": 1.5});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":"x","c":true,"d":1.5}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let v = json!({"outer": vec![1u32, 2, 3]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"outer\": ["));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&json!({"k": "a\"b\n"})).unwrap();
        assert_eq!(s, r#"{"k":"a\"b\n"}"#);
    }
}
