//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! minimal surface the workspace uses: the `Serialize` / `Deserialize` marker
//! traits and the no-op derive macros re-exported from the shim
//! `serde_derive`. Real serialization is done explicitly through
//! `serde_json::ToValue`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
