//! Offline shim for `proptest`.
//!
//! A deterministic property-testing mini-framework exposing the subset of
//! the proptest API the workspace's tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header) and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Every test case is generated from a SplitMix64 stream seeded with the
//! case index, so failures reproduce bit-for-bit across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for test case number `case` (deterministic).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns for it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`fn@vec`]: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` / `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Assert inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng); )*
                    let _ = &mut proptest_rng;
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(3);
        for _ in 0..1000 {
            let v = (5usize..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (2u32..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let strat = (1usize..4).prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)));
        let mut rng = crate::TestRng::for_case(7);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u64..1000, 8usize);
        let mut a = crate::TestRng::for_case(11);
        let mut b = crate::TestRng::for_case(11);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in 0usize..5) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c.min(4), c);
        }
    }
}
