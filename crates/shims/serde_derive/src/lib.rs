//! Offline shim for `serde_derive`: the derives are accepted and expand to
//! nothing. The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! documentation of intent; actual JSON encoding goes through the explicit
//! `serde_json::ToValue` trait.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
