//! Offline shim for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`) on top of `std::time::Instant`. Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples; the *median*
//! sample is reported, which is robust against scheduler noise.
//!
//! Output goes to stdout as one line per benchmark:
//!
//! ```text
//! bench <group>/<name> median_ns <n> samples <k>
//! ```
//!
//! and, when the `CHAOS_BENCH_JSON` environment variable names a file, the
//! same records are appended there as JSON lines so harnesses (e.g.
//! `perf_check`) can consume them without parsing human output.

use std::hint;
use std::io::Write as _;
use std::time::Instant;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dereference", "replicated")` → `dereference/replicated`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the closure given to `iter`; times the closure body.
pub struct Bencher {
    /// Median nanoseconds of the samples taken by the last `iter` call.
    pub(crate) median_ns: u128,
    pub(crate) samples: usize,
}

impl Bencher {
    /// Time `f`, taking `samples` measurements after a small warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = (self.samples / 5).clamp(1, 5);
        for _ in 0..warmup {
            black_box(f());
        }
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo bench -- --bench <filter>`:
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Ungrouped benchmark (criterion compatibility).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_id();
        run_one(self.filter.as_deref(), "", &name, 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_id();
        run_one(
            self.criterion.filter.as_deref(),
            &self.name,
            &name,
            self.sample_size,
            f,
        );
        self
    }

    /// Run one benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_id();
        run_one(
            self.criterion.filter.as_deref(),
            &self.name,
            &name,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// End the group (criterion compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: Option<&str>,
    group: &str,
    name: &str,
    sample_size: usize,
    mut f: F,
) {
    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if let Some(fil) = filter {
        if !full.contains(fil) {
            return;
        }
    }
    let mut bencher = Bencher {
        median_ns: 0,
        samples: sample_size,
    };
    f(&mut bencher);
    println!(
        "bench {full} median_ns {} samples {}",
        bencher.median_ns, bencher.samples
    );
    if let Ok(path) = std::env::var("CHAOS_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{full}\",\"median_ns\":{},\"samples\":{}}}",
                bencher.median_ns, bencher.samples
            );
        }
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_median() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
