//! # chaos-repro — reproduction of "Runtime Compilation Techniques for Data
//! Partitioning and Communication Schedule Reuse" (Ponnusamy, Saltz,
//! Choudhary — Supercomputing '93)
//!
//! This umbrella crate re-exports the workspace's public API so examples and
//! downstream users can depend on a single crate:
//!
//! * [`dmsim`] — the simulated distributed-memory machine (iPSC/860-like
//!   α–β cost model, deterministic message exchange, collectives),
//! * [`geocol`] — the GeoCoL interface data structure and the partitioner
//!   library (BLOCK, CYCLIC, RCB, inertial, RSB),
//! * [`runtime`] — the CHAOS/PARTI-style runtime: distributed arrays,
//!   translation tables, inspectors/executors, communication schedules,
//!   array remapping, the mapper coupler and the schedule-reuse registry,
//! * [`lang`] — the Fortran-D-like mini-language and its
//!   runtime-compilation lowering onto the runtime,
//! * [`workloads`] — synthetic unstructured-mesh and molecular-dynamics
//!   workload generators.
//!
//! See `examples/quickstart.rs` for a five-minute tour, `ARCHITECTURE.md`
//! for the documented system spine (crate map, CSR data flow, Backend
//! determinism contract, kernel compiler, rank-parallel partitioners),
//! `ROADMAP.md` for the open items and `CHANGES.md` for the PR-by-PR
//! history.

pub use chaos_dmsim as dmsim;
pub use chaos_geocol as geocol;
pub use chaos_lang as lang;
pub use chaos_runtime as runtime;
pub use chaos_workloads as workloads;

/// A prelude pulling in the types most programs need.
pub mod prelude {
    pub use chaos_dmsim::{Machine, MachineConfig, MetricsRegistry, PhaseKind};
    pub use chaos_geocol::{
        GeoColBuilder, PartitionQuality, Partitioner, RcbPartitioner, RsbPartitioner,
    };
    pub use chaos_lang::{lower_program, parse_program, Executor, ProgramInputs};
    pub use chaos_runtime::prelude::*;
    pub use chaos_workloads::{MdConfig, MeshConfig, UnstructuredMesh, WaterBox};
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let m = crate::dmsim::Machine::new(crate::dmsim::MachineConfig::unit(2));
        assert_eq!(m.nprocs(), 2);
        assert!(crate::geocol::registered_partitioner_names().contains(&"RSB"));
    }
}
