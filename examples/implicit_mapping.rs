//! Figures 4 and 5 of the paper, parsed and executed verbatim (modulo the
//! mini-language's `CALL READ_DATA` spelling): implicit mapping with a
//! connectivity-based partitioner (RSB, Figure 4) and with a geometry-based
//! partitioner (RCB, Figure 5), plus a comparison of the partition quality
//! each one produces.
//!
//! Run with `cargo run --example implicit_mapping --release`.

use chaos_lang::{lower_program, parse_program, Executor, ProgramInputs};
use chaos_repro::prelude::*;

/// Figure 4: GeoCoL built from connectivity (LINK), partitioned with RSB.
const FIGURE4: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
C$  CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$  SET distfmt BY PARTITIONING G USING RSB
C$  REDISTRIBUTE reg(distfmt)
C   Loop over edges involving x, y
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

/// Figure 5: GeoCoL built from spatial coordinates (GEOMETRY), partitioned
/// with recursive binary coordinate bisection.
const FIGURE5: &str = r#"
    REAL*8 x(nnode), y(nnode)
    REAL*8 xc(nnode), yc(nnode), zc(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y, xc, yc, zc WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, xc, yc, zc, end_pt1, end_pt2)
C$  CONSTRUCT G (nnode, GEOMETRY(3, xc, yc, zc))
C$  SET distfmt BY PARTITIONING G USING RCB
C$  REDISTRIBUTE reg(distfmt)
C   Loop over edges involving x, y
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

fn main() {
    let nprocs = 16;
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(6_000));
    let state: Vec<f64> = (0..mesh.nnodes())
        .map(|i| 1.0 + (i as f64 * 0.13).sin())
        .collect();

    let base_inputs = ProgramInputs::new()
        .scalar("nnode", mesh.nnodes())
        .scalar("nedge", mesh.nedges())
        .real("x", state.clone())
        .real("y", vec![0.0; mesh.nnodes()])
        .int("end_pt1", mesh.end_pt1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", mesh.end_pt2.iter().map(|&v| v + 1).collect());
    let geometry_inputs = base_inputs
        .clone()
        .real("xc", mesh.xc.clone())
        .real("yc", mesh.yc.clone())
        .real("zc", mesh.zc.clone());

    println!(
        "mesh: {} nodes / {} edges on {nprocs} simulated processors\n",
        mesh.nnodes(),
        mesh.nedges()
    );

    for (label, source, inputs) in [
        ("Figure 4 (LINK + RSB)", FIGURE4, base_inputs.clone()),
        ("Figure 5 (GEOMETRY + RCB)", FIGURE5, geometry_inputs),
    ] {
        let program = lower_program(parse_program(source).expect("parse")).expect("lower");
        let mut exec = Executor::new(MachineConfig::ipsc860(nprocs), inputs);
        exec.run(&program).expect("execute");
        for _ in 1..10 {
            exec.execute_loop(&program, "L1").expect("sweep");
        }
        let m = exec.machine();
        println!("{label}");
        println!(
            "  graph generation {:.3} s",
            m.phase_elapsed(PhaseKind::GraphGeneration)
        );
        println!(
            "  partitioner      {:.3} s",
            m.phase_elapsed(PhaseKind::Partitioner)
        );
        println!(
            "  remap            {:.3} s",
            m.phase_elapsed(PhaseKind::Remap)
        );
        println!(
            "  inspector        {:.3} s",
            m.phase_elapsed(PhaseKind::Inspector)
        );
        println!(
            "  executor (10x)   {:.3} s",
            m.phase_elapsed(PhaseKind::Executor)
        );
        println!("  total            {:.3} s", m.elapsed().max_seconds());
        println!(
            "  resulting node decomposition: {}\n",
            exec.decomposition("reg")
                .map(|d| d.kind_name())
                .unwrap_or("?")
        );
    }

    println!(
        "Both figures compute identical results; the trade-off is partitioning cost vs\n\
         executor quality — exactly the comparison in the paper's Table 2."
    );
}
