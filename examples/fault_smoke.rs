//! Fault-injection smoke test: the mesh and MD sweeps survive a seeded
//! schedule of kernel panics, lane stalls and mailbox corruptions, and the
//! recovered runs are **bit-identical** to fault-free runs.
//!
//! Both cases run the Fortran-D-like template through the worker-pool
//! engine with epoch checkpointing every 8 epochs. The mesh case recovers
//! via `RetryPhase` (discard the failed phase's ledgers, restore the
//! pre-sweep snapshot, re-run); the MD pair sweep recovers via
//! `RollbackToCheckpoint` (restore the last epoch checkpoint, replay the
//! journaled sweeps). A barrier deadline on the pool turns the injected
//! stall into a typed `Straggler` diagnosis instead of a silent hang.
//!
//! Run with `cargo run --example fault_smoke --release`.

use chaos_lang::{
    lower_program, parse_program, Counter, Executor, FaultKind, FaultPlan, MetricsRegistry,
    ProgramInputs, RecoveryPolicy,
};
use chaos_repro::dmsim::{serde_json::Value, TraceSink};
use chaos_repro::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const EDGE_TEMPLATE: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

const NPROCS: usize = 8;
const WORKERS: usize = 4;
const SWEEPS: usize = 10;
const CHECKPOINT_EVERY: u64 = 8;

struct CaseResult {
    y: Vec<f64>,
    clocks: Vec<f64>,
    messages: usize,
    bytes: usize,
    epoch: u64,
}

/// Run preamble + sweeps on a fresh pooled executor; optionally inject the
/// fault schedule with the given recovery policy and/or install a trace
/// sink (tracing must never change the result — the traced case below is
/// asserted bit-identical to the untraced one).
fn run_case(
    inputs: &ProgramInputs,
    faults: Option<(Arc<FaultPlan>, RecoveryPolicy)>,
    trace: Option<Arc<TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> CaseResult {
    let cp = lower_program(parse_program(EDGE_TEMPLATE).expect("parse")).expect("lower");
    let mut exec =
        Executor::new_pooled_with_workers(MachineConfig::ipsc860(NPROCS), WORKERS, inputs.clone())
            .with_checkpoint_every(CHECKPOINT_EVERY)
            .with_barrier_deadline(Duration::from_millis(10));
    if let Some((plan, policy)) = faults {
        exec = exec.with_fault_plan(plan).with_recovery_policy(policy);
    }
    if let Some(sink) = trace {
        exec = exec.with_trace(sink);
    }
    if let Some(registry) = metrics {
        exec = exec.with_metrics(registry);
    }
    exec.run(&cp).expect("program runs");
    for _ in 0..SWEEPS {
        exec.execute_loop(&cp, "L1").expect("sweep");
    }
    let elapsed = exec.machine().elapsed();
    let stats = exec.machine().stats().grand_totals();
    CaseResult {
        y: exec.real_global("y").expect("y"),
        clocks: elapsed.per_proc.clone(),
        messages: stats.messages,
        bytes: stats.bytes,
        epoch: exec.machine().epoch(),
    }
}

/// Epochs spanned by the sweeps (past the directive preamble), probed on a
/// fault-free executor with the same checkpoint cadence.
fn sweep_epochs(inputs: &ProgramInputs) -> (u64, u64) {
    let cp = lower_program(parse_program(EDGE_TEMPLATE).expect("parse")).expect("lower");
    let mut probe = Executor::new(MachineConfig::ipsc860(NPROCS), inputs.clone())
        .with_checkpoint_every(CHECKPOINT_EVERY);
    probe.run(&cp).expect("program runs");
    let start = probe.machine().epoch();
    for _ in 0..SWEEPS {
        probe.execute_loop(&cp, "L1").expect("sweep");
    }
    (start, probe.machine().epoch())
}

/// One panic, one stall (caught by the pool's barrier deadline) and one
/// corruption, spread across the sweep epochs.
fn smoke_plan(e0: u64, e1: u64) -> Arc<FaultPlan> {
    let span = e1 - e0;
    Arc::new(
        FaultPlan::new()
            .with_stall(Duration::from_millis(60))
            .with_fault(e0 + 1, 1, FaultKind::KernelPanic)
            .with_fault(e0 + span / 2, 0, FaultKind::LaneStall)
            .with_fault(e0 + 3 * span / 4, NPROCS - 1, FaultKind::MailboxCorruption),
    )
}

fn assert_bit_identical(name: &str, clean: &CaseResult, recovered: &CaseResult) {
    assert_eq!(clean.epoch, recovered.epoch, "{name}: epoch diverged");
    for (i, (a, b)) in clean.y.iter().zip(&recovered.y).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: y[{i}] diverged");
    }
    for (p, (a, b)) in clean.clocks.iter().zip(&recovered.clocks).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: clock[{p}] diverged");
    }
    assert_eq!(clean.messages, recovered.messages, "{name}: messages");
    assert_eq!(clean.bytes, recovered.bytes, "{name}: bytes");
    println!(
        "{name}: recovered run bit-identical to fault-free run \
         ({} values, {} ranks, {} messages, epoch {})",
        clean.y.len(),
        clean.clocks.len(),
        clean.messages,
        clean.epoch
    );
}

/// Validate the exported Chrome trace: the JSON value tree has the trace
/// event array with one object per retained event, every event carries the
/// keys `chrome://tracing` requires (`name`, `ph`, `pid`, `tid`, `ts`), and
/// the serialized string is non-trivial. Prints the per-lane summary table.
fn validate_chrome_trace(sink: &TraceSink) {
    let doc = sink.chrome_trace();
    let Value::Object(fields) = &doc else {
        panic!("chrome trace must serialize as a JSON object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("chrome trace must carry a traceEvents key");
    let Value::Array(items) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(!items.is_empty(), "traced run exported no events");
    let mut spans = 0usize;
    for item in items {
        let Value::Object(event) = item else {
            panic!("every trace event must be an object");
        };
        for key in ["name", "ph", "pid", "tid", "ts"] {
            assert!(
                event.iter().any(|(k, _)| k == key),
                "trace event is missing the required key {key:?}"
            );
        }
        if event
            .iter()
            .any(|(k, v)| k == "ph" && matches!(v, Value::Str(s) if s == "B"))
        {
            spans += 1;
        }
    }
    assert!(spans > 0, "the exported trace contains no duration spans");
    let serialized = sink.chrome_trace_json();
    assert!(
        serialized.starts_with('{') && serialized.ends_with('}'),
        "chrome trace JSON must be one object"
    );
    println!(
        "trace: {} events ({} span begins), {} bytes of Chrome-trace JSON",
        items.len(),
        spans,
        serialized.len()
    );
    print!("{}", sink.summary());
}

fn mesh_inputs() -> ProgramInputs {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(4_000));
    ProgramInputs::new()
        .scalar("nnode", mesh.nnodes())
        .scalar("nedge", mesh.nedges())
        .real(
            "x",
            (0..mesh.nnodes())
                .map(|i| 1.0 + (i as f64 * 0.11).cos())
                .collect(),
        )
        .real("y", vec![0.0; mesh.nnodes()])
        .int("end_pt1", mesh.end_pt1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", mesh.end_pt2.iter().map(|&v| v + 1).collect())
}

fn md_inputs() -> ProgramInputs {
    // The MD non-bonded sweep has the same irregular shape as the edge
    // loop: a pair list indirecting into per-atom arrays, reductions into
    // both endpoints.
    let water = WaterBox::generate(MdConfig::water_648());
    ProgramInputs::new()
        .scalar("nnode", water.natoms())
        .scalar("nedge", water.npairs())
        .real("x", water.xc.clone())
        .real("y", vec![0.0; water.natoms()])
        .int("end_pt1", water.pair1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", water.pair2.iter().map(|&v| v + 1).collect())
}

fn main() {
    // The injected panics are caught and recovered by the executor; keep
    // the expected payloads out of the output.
    std::panic::set_hook(Box::new(|info| {
        if info
            .payload()
            .downcast_ref::<chaos_repro::dmsim::InjectedFault>()
            .is_none()
        {
            eprintln!("{info}");
        }
    }));

    println!(
        "fault smoke: {NPROCS} ranks on {WORKERS} pool workers, checkpoint every \
         {CHECKPOINT_EVERY} epochs, {SWEEPS} sweeps per case"
    );

    // Case 1: unstructured-mesh edge sweep, RetryPhase recovery.
    let mesh = mesh_inputs();
    let (e0, e1) = sweep_epochs(&mesh);
    let clean = run_case(&mesh, None, None, None);
    let plan = smoke_plan(e0, e1);
    let retry = || RecoveryPolicy::RetryPhase {
        max_attempts: 3,
        backoff: Duration::ZERO,
    };
    let recovered = run_case(&mesh, Some((Arc::clone(&plan), retry())), None, None);
    assert!(plan.exhausted(), "mesh: every scheduled fault fired");
    assert_bit_identical("mesh/retry-phase", &clean, &recovered);

    // Case 1b: the same recovered run with the flight recorder and metrics
    // registry enabled. Both are observers — the instrumented run must be
    // bit-identical to the bare one — and the recorded timeline must export
    // as well-formed Chrome-trace JSON with monotone span nesting on every
    // lane. The metrics snapshot shows what recovery actually cost.
    let sink = Arc::new(TraceSink::new(WORKERS));
    let registry = Arc::new(MetricsRegistry::new(WORKERS));
    let plan = smoke_plan(e0, e1);
    let traced = run_case(
        &mesh,
        Some((Arc::clone(&plan), retry())),
        Some(Arc::clone(&sink)),
        Some(Arc::clone(&registry)),
    );
    assert!(plan.exhausted(), "mesh/traced: every scheduled fault fired");
    assert_bit_identical("mesh/traced-vs-untraced", &recovered, &traced);
    sink.finish();
    sink.check_span_nesting().expect("span nesting");
    validate_chrome_trace(&sink);

    // The recovery story in counters: every injected fault was seen, every
    // retry and checkpoint refresh was tallied, and the auditor has at
    // least one phase kind worth of modeled-vs-wall samples.
    registry.observe_trace(&sink);
    let snap = registry.snapshot();
    assert!(snap.counter(Counter::FaultsFired) >= 3, "faults metered");
    assert!(snap.counter(Counter::RetryAttempts) >= 1, "retries metered");
    assert!(
        snap.counter(Counter::CheckpointRefreshes) >= 1,
        "checkpoint refreshes metered"
    );
    println!("\nmetrics after recovery:\n{snap}");

    // Case 2: MD non-bonded pair sweep, RollbackToCheckpoint recovery.
    let md = md_inputs();
    let (e0, e1) = sweep_epochs(&md);
    let clean = run_case(&md, None, None, None);
    let plan = smoke_plan(e0, e1);
    let recovered = run_case(
        &md,
        Some((Arc::clone(&plan), RecoveryPolicy::RollbackToCheckpoint)),
        None,
        None,
    );
    assert!(plan.exhausted(), "md: every scheduled fault fired");
    assert_bit_identical("md/rollback-to-checkpoint", &clean, &recovered);

    println!("fault smoke passed: panic, stall and corruption all recovered on the pool");
}
