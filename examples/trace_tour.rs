//! Trace tour: the flight recorder watching a pooled executor sweep.
//!
//! Runs the Fortran-D-like edge-flux template on the worker-pool engine
//! with a [`TraceSink`] installed, then shows the three observability
//! surfaces the recorder exposes:
//!
//! 1. the **per-lane utilization summary table** — busy vs barrier-wait
//!    time per pool lane, release/park counts, epochs per second and the
//!    per-epoch straggler skew,
//! 2. the **Chrome-trace export** — pass an output path as the first
//!    argument to write a `.json` file you can open in `chrome://tracing`
//!    or Perfetto (each pool lane is one timeline row; every span carries
//!    the machine epoch and the modeled clock as args),
//! 3. the **wall-vs-modeled correlation** — the modeled clock advances
//!    only at driver-side replay points, and the tour prints both clocks
//!    side by side.
//!
//! Tracing is an observer: the traced run is bit-identical to an untraced
//! one (asserted here too, on the modeled clock).
//!
//! Run with `cargo run --example trace_tour --release [-- trace.json]`.

use chaos_lang::{lower_program, parse_program, Executor, ProgramInputs, TraceSink};
use chaos_repro::prelude::*;
use chaos_workloads::{MeshConfig, UnstructuredMesh};
use std::sync::Arc;

const EDGE_TEMPLATE: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

const NPROCS: usize = 8;
const WORKERS: usize = 4;
const SWEEPS: usize = 12;

fn inputs() -> ProgramInputs {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(6_000));
    ProgramInputs::new()
        .scalar("nnode", mesh.nnodes())
        .scalar("nedge", mesh.nedges())
        .real(
            "x",
            (0..mesh.nnodes())
                .map(|i| 1.0 + (i as f64 * 0.17).sin())
                .collect(),
        )
        .real("y", vec![0.0; mesh.nnodes()])
        .int("end_pt1", mesh.end_pt1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", mesh.end_pt2.iter().map(|&v| v + 1).collect())
}

fn run(trace: Option<Arc<TraceSink>>) -> f64 {
    let cp = lower_program(parse_program(EDGE_TEMPLATE).expect("parse")).expect("lower");
    let mut exec =
        Executor::new_pooled_with_workers(MachineConfig::ipsc860(NPROCS), WORKERS, inputs());
    if let Some(sink) = trace {
        exec = exec.with_trace(sink);
    }
    exec.run(&cp).expect("program runs");
    for _ in 0..SWEEPS {
        exec.execute_loop(&cp, "L1").expect("sweep");
    }
    exec.machine().elapsed().max_seconds()
}

fn main() {
    let out_path = std::env::args().nth(1);
    println!("trace tour: {NPROCS} ranks on {WORKERS} pool workers, {SWEEPS} executor sweeps\n");

    // The untraced run first: tracing must not move the modeled clock.
    let untraced_modeled = run(None);

    // The traced run: one ring per pool lane plus the driver's.
    let sink = Arc::new(TraceSink::new(WORKERS));
    let traced_modeled = run(Some(Arc::clone(&sink)));
    assert_eq!(
        untraced_modeled.to_bits(),
        traced_modeled.to_bits(),
        "tracing perturbed the modeled clock"
    );
    sink.finish();
    sink.check_span_nesting().expect("span nesting");

    // Surface 1: the per-lane utilization summary table.
    let summary = sink.summary();
    print!("{summary}");

    // Surface 3: wall vs modeled. The modeled clock is what the paper's
    // tables report; the wall clock is what this container actually spent.
    println!(
        "\nwall {:.3} ms vs modeled {:.3} ms ({} iPSC/860-modeled ranks on {} real lanes)",
        summary.span_ns as f64 / 1e6,
        traced_modeled * 1e3,
        NPROCS,
        WORKERS,
    );

    // Surface 2: the Chrome-trace export.
    match out_path {
        Some(path) => {
            std::fs::write(&path, sink.chrome_trace_json())
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote Chrome trace to {path} — open it in chrome://tracing or Perfetto");
        }
        None => println!(
            "pass an output path to write the {}-byte Chrome trace \
             (cargo run --example trace_tour --release -- trace.json)",
            sink.chrome_trace_json().len()
        ),
    }
}
