//! The molecular-dynamics template: the non-bonded electrostatic force loop
//! of a 648-atom water box (216 TIP3P-like molecules), run through the CHAOS
//! runtime with a geometry-based (coordinate bisection) partitioner and
//! schedule reuse across timesteps.
//!
//! The pair list is rebuilt every `REBUILD_EVERY` timesteps — when that
//! happens, the indirection arrays change, the runtime's conservative
//! modification tracking invalidates the saved schedules, and the inspector
//! re-runs automatically. This is exactly the adaptive-problem pattern the
//! paper's Section 3 mechanism is designed for.
//!
//! Run with `cargo run --example molecular_dynamics --release`.

use chaos_repro::prelude::*;
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{
    gather, scatter_add, Dad, GeoColSpec, Inspector, InspectorResult, IterationPartition, LocalRef,
    LoopId, MapperCoupler,
};
use chaos_workloads::pair_force_kernel;

const TIMESTEPS: usize = 40;
const REBUILD_EVERY: usize = 10;

fn main() {
    let nprocs = 8;
    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let mut registry = ReuseRegistry::new();

    let mut water = WaterBox::generate(MdConfig::water_648());
    println!(
        "water box: {} atoms, {} non-bonded pairs within cutoff {}",
        water.natoms(),
        water.npairs(),
        water.config.cutoff
    );

    // Distributed arrays: positions, charges and force accumulators.
    let natoms = water.natoms();
    let dist0 = Distribution::block(natoms, nprocs);
    let xc = DistArray::from_global("xc", dist0.clone(), &water.xc);
    let yc = DistArray::from_global("yc", dist0.clone(), &water.yc);
    let zc = DistArray::from_global("zc", dist0.clone(), &water.zc);
    let mut charge = DistArray::from_global("q", dist0.clone(), &water.charge);
    let mut fx = DistArray::from_global("fx", dist0.clone(), &vec![0.0; natoms]);

    // Partition atoms by spatial position (coordinate bisection on the
    // GEOMETRY section), as an MD code would.
    let spec = GeoColSpec::new(natoms).with_geometry(vec![&xc, &yc, &zc]);
    let geocol = MapperCoupler.construct_geocol(&mut machine, &spec);
    let outcome = MapperCoupler.partition(&mut machine, &RcbPartitioner, &geocol);
    MapperCoupler.redistribute(
        &mut machine,
        &mut registry,
        &mut charge,
        &outcome.distribution,
    );
    MapperCoupler.redistribute(&mut machine, &mut registry, &mut fx, &outcome.distribution);
    let dist = outcome.distribution;

    let loop_id = LoopId::new("force-loop");
    // The pair list is itself a distributed (indirection) array; its DAD is
    // what the schedule-reuse machinery watches.
    let mut pair_dist = Distribution::block(water.npairs(), nprocs);
    let mut pair1 = DistArray::from_global("pair1", pair_dist.clone(), &water.pair1);

    let mut cached: Option<(IterationPartition, InspectorResult)> = None;
    let mut inspector_runs = 0usize;
    let mut reuse_hits = 0usize;

    for step in 0..TIMESTEPS {
        // Every REBUILD_EVERY steps the neighbour list is rebuilt: the
        // indirection arrays are rewritten, which bumps their DAD's
        // modification stamp and invalidates the saved inspector results.
        if step > 0 && step % REBUILD_EVERY == 0 {
            water = WaterBox::generate(MdConfig {
                seed: water.config.seed + step as u64,
                ..water.config
            });
            pair_dist = Distribution::block(water.npairs(), nprocs);
            pair1 = DistArray::from_global("pair1", pair_dist.clone(), &water.pair1);
            registry.record_write(&pair1.dad());
            println!(
                "  step {step}: pair list rebuilt ({} pairs)",
                water.npairs()
            );
        }

        let data_dads: Vec<Dad> = vec![charge.dad(), fx.dad()];
        let ind_dads: Vec<Dad> = vec![pair1.dad()];
        let valid = cached.is_some()
            && registry
                .check_on_machine(&mut machine, "force-loop", &loop_id, &data_dads, &ind_dads)
                .can_reuse();
        if valid {
            reuse_hits += 1;
        } else {
            let refs: Vec<Vec<u32>> = water
                .pair1
                .iter()
                .zip(&water.pair2)
                .map(|(&a, &b)| vec![a, b])
                .collect();
            let iter_part = partition_iterations(
                &mut machine,
                &dist,
                &refs,
                IterPartitionPolicy::AlmostOwnerComputes,
            );
            let mut pattern = AccessPattern::new(nprocs);
            for p in 0..nprocs {
                for &it in iter_part.iters(p) {
                    pattern.refs[p].push(water.pair1[it as usize]);
                    pattern.refs[p].push(water.pair2[it as usize]);
                }
            }
            let result = Inspector.localize(&mut machine, "force-loop", &dist, &pattern);
            registry.save_inspector(loop_id, data_dads, ind_dads);
            cached = Some((iter_part, result));
            inspector_runs += 1;
        }
        let (iter_part, inspect) = cached.as_ref().unwrap();

        // Executor: gather charges, accumulate pairwise force x-components.
        let ghosts = gather(&mut machine, "force-loop", &inspect.schedule, &charge);
        let mut contributions: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![0.0; inspect.ghost_counts[p]])
            .collect();
        for p in 0..nprocs {
            let localized = &inspect.localized[p];
            let q_local = charge.local(p);
            let q_ghost = &ghosts[p];
            let mut updates = Vec::with_capacity(localized.len());
            for (pos, &it) in iter_part.iters(p).iter().enumerate() {
                let (r1, r2) = (localized[2 * pos], localized[2 * pos + 1]);
                let (a, b) = (
                    water.pair1[it as usize] as usize,
                    water.pair2[it as usize] as usize,
                );
                let f = pair_force_kernel(
                    (water.xc[a], water.yc[a], water.zc[a]),
                    (water.xc[b], water.yc[b], water.zc[b]),
                    *r1.resolve(q_local, q_ghost),
                    *r2.resolve(q_local, q_ghost),
                );
                updates.push((r1, f.0));
                updates.push((r2, -f.0));
            }
            let f_local = fx.local_mut(p);
            for (r, f) in updates {
                match r {
                    LocalRef::Owned(off) => f_local[off as usize] += f,
                    LocalRef::Ghost(slot) => contributions[p][slot as usize] += f,
                }
            }
        }
        scatter_add(
            &mut machine,
            "force-loop",
            &inspect.schedule,
            &mut fx,
            &contributions,
        );
        registry.record_write(&fx.dad());
    }

    let elapsed = machine.elapsed();
    println!(
        "\n{TIMESTEPS} timesteps: inspector ran {inspector_runs} times, schedules reused {reuse_hits} times"
    );
    println!(
        "modeled time {:.3} s (compute {:.3} s, communication {:.3} s), {} messages",
        elapsed.max_seconds(),
        elapsed.max_compute_seconds(),
        elapsed.max_comm_seconds(),
        machine.stats().grand_totals().messages
    );
    let momentum: f64 = fx.to_global().iter().sum();
    println!("total accumulated force component: {momentum:.3e} (Newton's third law => ~0)");
}
