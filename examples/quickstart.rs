//! Quickstart: the five-phase CHAOS pipeline (Figure 2 of the paper) on a
//! small unstructured mesh.
//!
//! ```text
//! Phase A  build the GeoCoL graph, partition it           (CONSTRUCT / SET)
//! Phase B  partition loop iterations
//! Phase C  remap the data arrays                          (REDISTRIBUTE)
//! Phase D  inspector: schedules, ghost buffers, indices
//! Phase E  executor: gather -> compute -> scatter-add
//! ```
//!
//! Run with `cargo run --example quickstart --release`.

use chaos_repro::prelude::*;
use chaos_runtime::iterpart::partition_iterations;
use chaos_runtime::{gather, scatter_add, GeoColSpec, Inspector, LocalRef, MapperCoupler};
use chaos_workloads::edge_flux_kernel;

fn main() {
    // A simulated 8-processor iPSC/860-like machine.
    let nprocs = 8;
    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let mut registry = ReuseRegistry::new();

    // A small 3-D unstructured mesh whose node numbering is uncorrelated
    // with its connectivity (the situation the paper targets).
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(2_000));
    println!(
        "mesh: {} nodes, {} edges, average degree {:.2}",
        mesh.nnodes(),
        mesh.nedges(),
        mesh.average_degree()
    );

    // Distributed arrays, initially BLOCK-distributed.
    let node_dist = Distribution::block(mesh.nnodes(), nprocs);
    let edge_dist = Distribution::block(mesh.nedges(), nprocs);
    let state: Vec<f64> = (0..mesh.nnodes())
        .map(|i| 1.0 + (i as f64 * 0.37).sin())
        .collect();
    let mut x = DistArray::from_global("x", node_dist.clone(), &state);
    let mut y = DistArray::from_global("y", node_dist.clone(), &vec![0.0; mesh.nnodes()]);
    let e1 = DistArray::from_global("end_pt1", edge_dist.clone(), &mesh.end_pt1);
    let e2 = DistArray::from_global("end_pt2", edge_dist.clone(), &mesh.end_pt2);

    // Phase A: build the GeoCoL structure from the edge list and hand it to
    // recursive spectral bisection.
    let spec = GeoColSpec::new(mesh.nnodes()).with_link(&e1, &e2);
    let geocol = MapperCoupler.construct_geocol(&mut machine, &spec);
    let outcome = MapperCoupler.partition(&mut machine, &RsbPartitioner::default(), &geocol);
    let quality = PartitionQuality::evaluate(&geocol, &outcome.partitioning);
    println!(
        "RSB partitioning: edge cut {} of {} ({:.1}%), load imbalance {:.3}",
        quality.edge_cut,
        quality.total_edges,
        100.0 * quality.cut_fraction(),
        quality.load_imbalance
    );

    // Phase C: remap x and y to the new irregular distribution.
    MapperCoupler.redistribute(&mut machine, &mut registry, &mut x, &outcome.distribution);
    MapperCoupler.redistribute(&mut machine, &mut registry, &mut y, &outcome.distribution);

    // Phase B: place each edge iteration on the processor owning most of its
    // references (almost-owner-computes).
    let iter_part = partition_iterations(
        &mut machine,
        &outcome.distribution,
        &mesh.edge_iteration_refs(),
        IterPartitionPolicy::AlmostOwnerComputes,
    );

    // Phase D: the inspector — translate indices, deduplicate off-processor
    // references, build the communication schedule.
    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for &it in iter_part.iters(p) {
            pattern.refs[p].push(mesh.end_pt1[it as usize]);
            pattern.refs[p].push(mesh.end_pt2[it as usize]);
        }
    }
    let inspect = Inspector.localize(&mut machine, "edge-loop", &outcome.distribution, &pattern);
    println!(
        "inspector: {:.1}% of references stay on-processor, {} ghost elements, {} messages per sweep",
        100.0 * inspect.local_fraction(),
        inspect.schedule.total_ghosts(),
        inspect.schedule.message_count(),
    );

    // Phase E: ten executor sweeps of the paper's loop L2, reusing the
    // schedule every time.
    for _ in 0..10 {
        let ghosts = gather(&mut machine, "edge-loop", &inspect.schedule, &x);
        let mut contributions: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![0.0; inspect.ghost_counts[p]])
            .collect();
        for p in 0..nprocs {
            let localized = &inspect.localized[p];
            let x_local = x.local(p);
            let x_ghost = &ghosts[p];
            let mut updates = Vec::with_capacity(localized.len());
            for it in 0..iter_part.iters(p).len() {
                let (r1, r2) = (localized[2 * it], localized[2 * it + 1]);
                let (f1, f2) =
                    edge_flux_kernel(*r1.resolve(x_local, x_ghost), *r2.resolve(x_local, x_ghost));
                updates.push((r1, f1));
                updates.push((r2, f2));
            }
            let y_local = y.local_mut(p);
            for (r, f) in updates {
                match r {
                    LocalRef::Owned(off) => y_local[off as usize] += f,
                    LocalRef::Ghost(slot) => contributions[p][slot as usize] += f,
                }
            }
        }
        scatter_add(
            &mut machine,
            "edge-loop",
            &inspect.schedule,
            &mut y,
            &contributions,
        );
    }

    let elapsed = machine.elapsed();
    println!(
        "modeled time: {:.3} s total ({:.3} s compute, {:.3} s communication) over {} messages",
        elapsed.max_seconds(),
        elapsed.max_compute_seconds(),
        elapsed.max_comm_seconds(),
        machine.stats().grand_totals().messages
    );

    // Sanity check: the flux kernel is conservative, so the accumulated sums
    // cancel out.
    let total: f64 = y.to_global().iter().sum();
    println!("global conservation check: sum(y) = {total:.3e} (should be ~0)");
}
