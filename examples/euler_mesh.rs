//! The unstructured-mesh Euler template written in the Fortran-D-like
//! mini-language — essentially the paper's Figure 4 program — compiled with
//! runtime compilation and executed on the simulated machine.
//!
//! The example runs the same template twice, once with the implicit-mapping
//! directives (CONSTRUCT / SET ... USING RSB / REDISTRIBUTE) and once with
//! the plain BLOCK distribution, and reports the executor-time difference —
//! the effect the paper's Tables 2 and 4 quantify.
//!
//! Run with `cargo run --example euler_mesh --release`.

use chaos_lang::{lower_program, parse_program, Executor, ProgramInputs};
use chaos_repro::prelude::*;

const MAPPED: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
C$  CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$  SET distfmt BY PARTITIONING G USING RSB
C$  REDISTRIBUTE reg(distfmt)
C   Loop over edges involving x, y
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

fn main() {
    let nprocs = 16;
    let sweeps = 25;
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(8_000));
    println!(
        "Euler template: {} mesh points, {} edges, {} simulated processors, {} executor sweeps",
        mesh.nnodes(),
        mesh.nedges(),
        nprocs,
        sweeps
    );

    let inputs = || {
        ProgramInputs::new()
            .scalar("nnode", mesh.nnodes())
            .scalar("nedge", mesh.nedges())
            .real(
                "x",
                (0..mesh.nnodes())
                    .map(|i| 1.0 + (i as f64 * 0.11).cos())
                    .collect(),
            )
            .real("y", vec![0.0; mesh.nnodes()])
            .int("end_pt1", mesh.end_pt1.iter().map(|&v| v + 1).collect())
            .int("end_pt2", mesh.end_pt2.iter().map(|&v| v + 1).collect())
    };

    // Variant 1: implicit mapping through the directives (Figure 4).
    let mapped = lower_program(parse_program(MAPPED).expect("parse")).expect("lower");
    let mut exec = Executor::new(MachineConfig::ipsc860(nprocs), inputs());
    exec.run(&mapped).expect("run");
    for _ in 1..sweeps {
        exec.execute_loop(&mapped, "L1").expect("sweep");
    }
    let mapped_executor = exec.machine().phase_elapsed(PhaseKind::Executor);
    let mapped_partitioner = exec.machine().phase_elapsed(PhaseKind::Partitioner);
    println!(
        "RSB-mapped:  executor {:.3} s over {sweeps} sweeps ({:.4} s/sweep), partitioner {:.3} s, inspectors run {}",
        mapped_executor,
        mapped_executor / sweeps as f64,
        mapped_partitioner,
        exec.report().inspector_runs
    );

    // Variant 2: plain BLOCK distribution (strip the mapping directives).
    let block_src: String = MAPPED
        .lines()
        .filter(|l| !l.trim_start().starts_with("C$"))
        .collect::<Vec<_>>()
        .join("\n");
    let block = lower_program(parse_program(&block_src).expect("parse")).expect("lower");
    let mut exec_block = Executor::new(MachineConfig::ipsc860(nprocs), inputs());
    exec_block.run(&block).expect("run");
    for _ in 1..sweeps {
        exec_block.execute_loop(&block, "L1").expect("sweep");
    }
    let block_executor = exec_block.machine().phase_elapsed(PhaseKind::Executor);
    println!(
        "BLOCK:       executor {:.3} s over {sweeps} sweeps ({:.4} s/sweep)",
        block_executor,
        block_executor / sweeps as f64
    );
    println!(
        "irregular (RSB) distribution improves the executor by {:.2}x",
        block_executor / mapped_executor
    );

    // Both variants computed the same answer.
    let a = exec.real_global("y").unwrap();
    let b = exec_block.real_global("y").unwrap();
    let max_diff = a
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!("max |y_mapped - y_block| = {max_diff:.3e} (identical results expected)");
}
