//! Metrics tour: the metrics registry and cost-model auditor watching a
//! pooled executor sweep.
//!
//! Runs the Fortran-D-like edge-flux template on the worker-pool engine
//! with a [`MetricsRegistry`] installed, then shows the three exposition
//! surfaces the registry offers:
//!
//! 1. the **human-readable snapshot** — counters (epochs, kernel/combine
//!    runs, barrier waits, pack volume, worker releases) plus the
//!    cost-model audit table ranking phase kinds by modeled-vs-wall drift,
//! 2. the **Prometheus text exposition** — `chaos_*_total` counters,
//!    per-engine/span/phase latency histograms and `chaos_model_drift_*`
//!    gauges, ready for a scrape endpoint (pass an output path as the
//!    first argument to write it to a file),
//! 3. the **JSON snapshot** — the same data as one machine-readable value
//!    tree for dashboards and the bench harness.
//!
//! Metering is an observer: the metered run is bit-identical to a bare
//! one (asserted here on the modeled clock).
//!
//! Run with `cargo run --example metrics_tour --release [-- metrics.prom]`.

use chaos_lang::{lower_program, parse_program, Counter, Executor, MetricsRegistry, ProgramInputs};
use chaos_repro::prelude::*;
use chaos_workloads::{MeshConfig, UnstructuredMesh};
use std::sync::Arc;

const EDGE_TEMPLATE: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

const NPROCS: usize = 8;
const WORKERS: usize = 4;
const SWEEPS: usize = 12;

fn inputs() -> ProgramInputs {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(6_000));
    ProgramInputs::new()
        .scalar("nnode", mesh.nnodes())
        .scalar("nedge", mesh.nedges())
        .real(
            "x",
            (0..mesh.nnodes())
                .map(|i| 1.0 + (i as f64 * 0.17).sin())
                .collect(),
        )
        .real("y", vec![0.0; mesh.nnodes()])
        .int("end_pt1", mesh.end_pt1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", mesh.end_pt2.iter().map(|&v| v + 1).collect())
}

fn run(metrics: Option<Arc<MetricsRegistry>>) -> f64 {
    let cp = lower_program(parse_program(EDGE_TEMPLATE).expect("parse")).expect("lower");
    let mut exec =
        Executor::new_pooled_with_workers(MachineConfig::ipsc860(NPROCS), WORKERS, inputs());
    if let Some(registry) = metrics {
        exec = exec.with_metrics(registry);
    }
    exec.run(&cp).expect("program runs");
    for _ in 0..SWEEPS {
        exec.execute_loop(&cp, "L1").expect("sweep");
    }
    exec.machine().elapsed().max_seconds()
}

fn main() {
    let out_path = std::env::args().nth(1);
    println!("metrics tour: {NPROCS} ranks on {WORKERS} pool workers, {SWEEPS} executor sweeps\n");

    // The bare run first: metering must not move the modeled clock.
    let bare_modeled = run(None);

    // The metered run: one shard per pool lane plus the driver's.
    let registry = Arc::new(MetricsRegistry::new(WORKERS));
    let metered_modeled = run(Some(Arc::clone(&registry)));
    assert_eq!(
        bare_modeled.to_bits(),
        metered_modeled.to_bits(),
        "metering perturbed the modeled clock"
    );

    // Surface 1: the human-readable snapshot with the audit table.
    let snap = registry.snapshot();
    assert!(snap.counter(Counter::Epochs) > 0, "epochs metered");
    assert!(snap.counter(Counter::KernelRuns) > 0, "kernels metered");
    assert!(!snap.spans.is_empty(), "span histograms recorded");
    println!("{snap}");

    let audit = registry.audit_report();
    if let Some(worst) = audit.worst() {
        println!(
            "worst cost-model offender: {:?} (drift {:.3}, {} samples)",
            worst.kind, worst.drift, worst.samples
        );
    }

    // Surface 3: the wall clocks this container spent vs the modeled
    // iPSC/860 clocks the paper's tables report.
    println!(
        "\nmodeled {:.3} ms across {} epochs ({} ranks on {} pool lanes)",
        metered_modeled * 1e3,
        snap.counter(Counter::Epochs),
        NPROCS,
        WORKERS,
    );

    // Surface 2: the Prometheus text exposition (and the JSON twin).
    let prom = snap.prometheus_text();
    assert!(prom.contains("chaos_epochs_total"), "counter exposition");
    assert!(
        prom.contains("chaos_span_duration_seconds_bucket"),
        "histogram exposition"
    );
    assert!(prom.contains("chaos_model_drift_ratio"), "audit exposition");
    let json = snap.to_json();
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "JSON snapshot"
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &prom).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote Prometheus exposition to {path}");
        }
        None => println!(
            "pass an output path to write the {}-byte Prometheus exposition \
             ({} bytes of JSON twin available via snapshot().to_json())",
            prom.len(),
            json.len()
        ),
    }
}
