//! A focused demonstration of the paper's second contribution: conservative
//! communication-schedule reuse driven by data access descriptors (DADs) and
//! the global modification stamp `nmod`.
//!
//! The example walks through the cases of Section 3:
//!
//! 1. repeated execution of an unchanged loop → schedules reused,
//! 2. writes to *data* arrays (the loop's own output) → still reused,
//! 3. writes to an *indirection* array → inspector re-runs,
//! 4. remapping a data array (`REDISTRIBUTE`) → inspector re-runs.
//!
//! Run with `cargo run --example schedule_reuse --release`.

use chaos_repro::prelude::*;
use chaos_runtime::{Dad, LoopId};

fn main() {
    let mut registry = ReuseRegistry::new();
    let nprocs = 8;

    // Arrays of the paper's loop L2: data arrays x, y on the node
    // decomposition; indirection arrays end_pt1, end_pt2 on the edge
    // decomposition.
    let nnodes = 10_000;
    let nedges = 35_000;
    let node_dist = Distribution::block(nnodes, nprocs);
    let edge_dist = Distribution::block(nedges, nprocs);
    let x_dad = Dad::of(&node_dist);
    let y_dad = Dad::of(&node_dist);
    let ind_dad = Dad::of(&edge_dist);
    let loop_id = LoopId::new("L2");

    let check = |registry: &mut ReuseRegistry, label: &str, data: &[Dad], ind: &[Dad]| {
        let decision = registry.check(&LoopId::new("L2"), data, ind);
        println!(
            "{label:<55} -> {}",
            if decision.can_reuse() {
                "REUSE saved schedules"
            } else {
                "RE-RUN inspector"
            }
        );
        decision.can_reuse()
    };

    println!("nmod = {}\n", registry.nmod());

    // First execution: nothing recorded yet.
    check(
        &mut registry,
        "first execution of L2",
        &[x_dad.clone(), y_dad.clone()],
        std::slice::from_ref(&ind_dad),
    );
    registry.save_inspector(
        loop_id,
        vec![x_dad.clone(), y_dad.clone()],
        vec![ind_dad.clone()],
    );
    println!("  (inspector runs, results saved)\n");

    // Case 1: nothing changed.
    check(
        &mut registry,
        "second execution, nothing modified",
        &[x_dad.clone(), y_dad.clone()],
        std::slice::from_ref(&ind_dad),
    );

    // Case 2: the loop writes y every sweep — y's DAD differs from the
    // indirection arrays' DAD, so the schedules stay valid.
    registry.record_write(&y_dad);
    check(
        &mut registry,
        "after the executor wrote y (a data array)",
        &[x_dad.clone(), y_dad.clone()],
        std::slice::from_ref(&ind_dad),
    );

    // Case 3: an adaptive step rewrites the edge list (the indirection
    // array). nmod advances and last_mod(DAD(end_pt)) moves past the saved
    // stamp: conservative invalidation.
    registry.record_write(&ind_dad);
    let reused = check(
        &mut registry,
        "after the mesh adapted (end_pt arrays rewritten)",
        &[x_dad.clone(), y_dad.clone()],
        std::slice::from_ref(&ind_dad),
    );
    assert!(!reused);
    registry.save_inspector(
        loop_id,
        vec![x_dad.clone(), y_dad.clone()],
        vec![ind_dad.clone()],
    );
    println!("  (inspector re-runs, new stamps recorded)\n");

    // Case 4: REDISTRIBUTE gives x and y a new irregular distribution — a
    // new DAD — so the next execution must re-inspect even though the
    // indirection arrays are untouched.
    let map: Vec<u32> = (0..nnodes).map(|i| (i % nprocs) as u32).collect();
    let irregular = Distribution::irregular_from_map(&map, nprocs);
    let x_new = Dad::of(&irregular);
    registry.record_remap(&x_dad, &x_new);
    check(
        &mut registry,
        "after REDISTRIBUTE remapped x to an irregular distribution",
        &[x_new.clone(), y_dad.clone()],
        std::slice::from_ref(&ind_dad),
    );

    let (hits, misses) = registry.hit_miss();
    println!(
        "\nnmod = {}, reuse check outcomes: {hits} reuse / {misses} re-run",
        registry.nmod()
    );
}
