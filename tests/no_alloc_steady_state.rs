//! Steady-state executor iterations must be allocation-free.
//!
//! The whole point of reusing an inspector schedule is that the executor
//! cost paid every iteration is as small as possible. With the flat CSR
//! schedule, `gather_into` + local compute + `scatter_op` into reused
//! buffers must not touch the heap at all: this test wraps the global
//! allocator in a counter, warms the loop up (first iterations may grow
//! stats tables and buffer capacities), and then asserts that further
//! iterations perform exactly zero allocations.

use chaos_repro::prelude::*;
use chaos_repro::runtime::{gather_into, scatter_op, Inspector, LocalRef};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocator wrapper counting every allocation (and reallocation).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_executor_iteration_is_allocation_free() {
    let nprocs = 8;
    let n = 4096usize;
    // A deterministic irregular distribution and access pattern (no RNG so
    // the test is bit-stable).
    let map: Vec<u32> = (0..n).map(|i| ((i * 7 + i / 13) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 1.0 + (i % 97) as f64).collect();
    let x = DistArray::from_global("x", dist.clone(), &data);
    let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; n]);

    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for k in 0..512 {
            pattern.refs[p].push(((p * 131 + k * 17) % n) as u32);
        }
    }

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let inspect = Inspector.localize(&mut machine, "L", &dist, &pattern);
    machine.set_phase_kind(Some(PhaseKind::Executor));

    // Reused executor buffers: ghost values and ghost contributions.
    let mut ghosts: Vec<Vec<f64>> = (0..nprocs)
        .map(|p| vec![0.0; inspect.ghost_counts[p]])
        .collect();
    let mut contributions: Vec<Vec<f64>> = ghosts.clone();

    let iteration = |machine: &mut Machine,
                     y: &mut DistArray<f64>,
                     ghosts: &mut Vec<Vec<f64>>,
                     contributions: &mut Vec<Vec<f64>>| {
        gather_into(machine, "L", &inspect.schedule, &x, ghosts);
        for contrib in contributions.iter_mut() {
            contrib.fill(0.0);
        }
        // Local compute: y(ref) += 2 * x(ref) for every reference.
        for p in 0..nprocs {
            let x_local = x.local(p);
            let x_ghost = &ghosts[p];
            let contrib = &mut contributions[p];
            let mut owned_updates = 0u32;
            for r in &inspect.localized[p] {
                let v = 2.0 * *r.resolve(x_local, x_ghost);
                match *r {
                    LocalRef::Owned(_) => owned_updates += 1,
                    LocalRef::Ghost(slot) => contrib[slot as usize] += v,
                }
            }
            machine.charge_compute(p, owned_updates as f64);
        }
        // Owned updates write y directly.
        for p in 0..nprocs {
            let x_local = x.local(p);
            let y_local = y.local_mut(p);
            for r in &inspect.localized[p] {
                if let LocalRef::Owned(off) = *r {
                    y_local[off as usize] += 2.0 * x_local[off as usize];
                }
            }
        }
        scatter_op(machine, "L", &inspect.schedule, y, contributions, |a, b| {
            *a += b
        });
    };

    // Warm-up: grows per-kind stats entries and any lazily-sized state.
    for _ in 0..3 {
        iteration(&mut machine, &mut y, &mut ghosts, &mut contributions);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let messages_before = machine.stats().grand_totals().messages;
    for _ in 0..10 {
        iteration(&mut machine, &mut y, &mut ghosts, &mut contributions);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let messages_after = machine.stats().grand_totals().messages;

    assert_eq!(
        after - before,
        0,
        "steady-state executor iterations allocated {} times",
        after - before
    );
    // The iterations really did run and charge communication.
    assert!(messages_after > messages_before);
    assert!(machine.elapsed().max_seconds() > 0.0);
}

/// The fused sweep path must be just as allocation-free as the split one:
/// `gather_inline` + `Backend::run_sweep` drive the same pack / compute /
/// combine kernels through driver-side contexts and a stack-local
/// `PhaseCharge`, so a steady-state fused sweep — one epoch for the whole
/// gather → compute → scatter — performs exactly zero allocations once the
/// per-rank sweep areas exist.
#[test]
fn steady_state_fused_sweep_is_allocation_free() {
    use chaos_repro::runtime::{gather_inline, scatter_combine_rows, scatter_pack_kernel};

    struct RankArea {
        ghosts: Vec<f64>,
        contrib: Vec<f64>,
    }

    let nprocs = 8;
    let n = 4096usize;
    let map: Vec<u32> = (0..n).map(|i| ((i * 7 + i / 13) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 1.0 + (i % 97) as f64).collect();
    let x = DistArray::from_global("x", dist.clone(), &data);

    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for k in 0..512 {
            pattern.refs[p].push(((p * 131 + k * 17) % n) as u32);
        }
    }

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let inspect = Inspector.localize(&mut machine, "L", &dist, &pattern);
    machine.set_phase_kind(Some(PhaseKind::Executor));

    // Persistent state: per-rank y shards (the sweep scratch) and per-rank
    // sweep areas holding ghost values and ghost contributions (the posted
    // halves, frozen during combine).
    let mut y: Vec<Vec<f64>> = (0..nprocs).map(|p| vec![0.0; x.local(p).len()]).collect();
    let mut areas: Vec<RankArea> = (0..nprocs)
        .map(|p| RankArea {
            ghosts: vec![0.0; inspect.ghost_counts[p]],
            contrib: vec![0.0; inspect.ghost_counts[p]],
        })
        .collect();

    let sweep = |machine: &mut Machine, y: &mut Vec<Vec<f64>>, areas: &mut Vec<RankArea>| {
        gather_inline(
            machine,
            &inspect.schedule,
            &x,
            areas.iter_mut().map(|a| &mut a.ghosts),
        );
        machine.run_sweep(
            &mut y[..],
            &mut areas[..],
            |ctx, y_local, area| {
                let rank = ctx.rank();
                area.contrib.fill(0.0);
                let x_local = x.local(rank);
                let mut owned = 0u32;
                for r in &inspect.localized[rank] {
                    match *r {
                        LocalRef::Owned(off) => {
                            y_local[off as usize] += 2.0 * x_local[off as usize];
                            owned += 1;
                        }
                        LocalRef::Ghost(slot) => {
                            area.contrib[slot as usize] += 2.0 * area.ghosts[slot as usize];
                        }
                    }
                }
                ctx.charge_compute(rank, owned as f64);
            },
            1,
            |_areas, _j| true,
            |ctx, _j| scatter_pack_kernel(ctx, &inspect.schedule),
            |ctx, _j, y_local, areas| {
                scatter_combine_rows(
                    ctx,
                    &inspect.schedule,
                    |p| areas[p].contrib.as_slice(),
                    &mut y_local[..],
                    &|a, b| *a += b,
                );
            },
        );
    };

    // Warm-up: grows per-kind stats entries and any lazily-sized state.
    for _ in 0..3 {
        sweep(&mut machine, &mut y, &mut areas);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let epoch_before = machine.epoch();
    let messages_before = machine.stats().grand_totals().messages;
    for _ in 0..10 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state fused sweeps allocated {} times",
        after - before
    );
    // Ten sweeps advanced exactly ten epochs (one per fused sweep) and
    // really communicated.
    assert_eq!(machine.epoch(), epoch_before + 10);
    assert!(machine.stats().grand_totals().messages > messages_before);
    assert!(machine.elapsed().max_seconds() > 0.0);
}

/// Tracing must be zero-cost in the heap sense on both sides of the switch:
/// with no `TraceSink` installed the steady-state sweep's only trace cost is
/// one `Option` check per hook (zero allocations — the contract that lets
/// the hooks live on the hot path at all), and with a sink *installed* the
/// preallocated per-lane rings absorb every recorded event, so steady-state
/// recording is allocation-free too (the rings wrap; they never grow).
#[test]
fn steady_state_sweep_is_allocation_free_with_tracing_disabled_and_enabled() {
    use chaos_repro::dmsim::TraceSink;
    use chaos_repro::runtime::{gather_inline, scatter_combine_rows, scatter_pack_kernel};
    use std::sync::Arc;

    struct RankArea {
        ghosts: Vec<f64>,
        contrib: Vec<f64>,
    }

    let nprocs = 8;
    let n = 4096usize;
    let map: Vec<u32> = (0..n).map(|i| ((i * 3 + i / 17) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 2.0 + (i % 61) as f64).collect();
    let x = DistArray::from_global("x", dist.clone(), &data);

    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for k in 0..512 {
            pattern.refs[p].push(((p * 127 + k * 19) % n) as u32);
        }
    }

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let inspect = Inspector.localize(&mut machine, "L", &dist, &pattern);
    machine.set_phase_kind(Some(PhaseKind::Executor));

    let mut y: Vec<Vec<f64>> = (0..nprocs).map(|p| vec![0.0; x.local(p).len()]).collect();
    let mut areas: Vec<RankArea> = (0..nprocs)
        .map(|p| RankArea {
            ghosts: vec![0.0; inspect.ghost_counts[p]],
            contrib: vec![0.0; inspect.ghost_counts[p]],
        })
        .collect();

    let sweep = |machine: &mut Machine, y: &mut Vec<Vec<f64>>, areas: &mut Vec<RankArea>| {
        gather_inline(
            machine,
            &inspect.schedule,
            &x,
            areas.iter_mut().map(|a| &mut a.ghosts),
        );
        machine.run_sweep(
            &mut y[..],
            &mut areas[..],
            |ctx, y_local, area| {
                let rank = ctx.rank();
                area.contrib.fill(0.0);
                let x_local = x.local(rank);
                let mut owned = 0u32;
                for r in &inspect.localized[rank] {
                    match *r {
                        LocalRef::Owned(off) => {
                            y_local[off as usize] += 2.0 * x_local[off as usize];
                            owned += 1;
                        }
                        LocalRef::Ghost(slot) => {
                            area.contrib[slot as usize] += 2.0 * area.ghosts[slot as usize];
                        }
                    }
                }
                ctx.charge_compute(rank, owned as f64);
            },
            1,
            |_areas, _j| true,
            |ctx, _j| scatter_pack_kernel(ctx, &inspect.schedule),
            |ctx, _j, y_local, areas| {
                scatter_combine_rows(
                    ctx,
                    &inspect.schedule,
                    |p| areas[p].contrib.as_slice(),
                    &mut y_local[..],
                    &|a, b| *a += b,
                );
            },
        );
    };

    // Disabled trace: a sink was installed once and then removed, so the
    // `None` branch of every hook is the one actually running.
    let sink = Arc::new(TraceSink::new(0));
    machine.install_trace(Some(Arc::clone(&sink)));
    machine.install_trace(None);
    for _ in 0..3 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let disabled_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        disabled_allocs, 0,
        "disabled-trace steady-state sweeps allocated {disabled_allocs} times"
    );

    // Enabled trace: the rings were preallocated at construction and wrap
    // in place, so recording every sweep's events still allocates nothing.
    machine.install_trace(Some(Arc::clone(&sink)));
    for _ in 0..3 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let events_before: usize = (0..sink.lanes()).map(|l| sink.events(l).len()).sum();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let enabled_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let events_after: usize = (0..sink.lanes()).map(|l| sink.events(l).len()).sum();
    assert_eq!(
        enabled_allocs, 0,
        "enabled-trace steady-state sweeps allocated {enabled_allocs} times"
    );
    // The traced sweeps really recorded (ring growth or wrap, not silence).
    assert!(
        events_after > events_before || sink.dropped() > 0,
        "traced sweeps recorded no events"
    );
}

/// Metering must be zero-cost in the heap sense on both sides of the
/// switch, exactly like tracing: with no `MetricsRegistry` installed the
/// steady-state sweep's only metering cost is one `Option` check per hook
/// (zero allocations), and with a registry *installed* the preallocated
/// per-lane counter/histogram shards absorb every increment and span
/// sample, so steady-state metering is allocation-free too (fixed-bucket
/// histograms never grow).
#[test]
fn steady_state_sweep_is_allocation_free_with_metrics_disabled_and_enabled() {
    use chaos_repro::dmsim::{Counter, MetricsRegistry};
    use chaos_repro::runtime::{gather_inline, scatter_combine_rows, scatter_pack_kernel};
    use std::sync::Arc;

    struct RankArea {
        ghosts: Vec<f64>,
        contrib: Vec<f64>,
    }

    let nprocs = 8;
    let n = 4096usize;
    let map: Vec<u32> = (0..n).map(|i| ((i * 3 + i / 17) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 2.0 + (i % 61) as f64).collect();
    let x = DistArray::from_global("x", dist.clone(), &data);

    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for k in 0..512 {
            pattern.refs[p].push(((p * 127 + k * 19) % n) as u32);
        }
    }

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let inspect = Inspector.localize(&mut machine, "L", &dist, &pattern);
    machine.set_phase_kind(Some(PhaseKind::Executor));

    let mut y: Vec<Vec<f64>> = (0..nprocs).map(|p| vec![0.0; x.local(p).len()]).collect();
    let mut areas: Vec<RankArea> = (0..nprocs)
        .map(|p| RankArea {
            ghosts: vec![0.0; inspect.ghost_counts[p]],
            contrib: vec![0.0; inspect.ghost_counts[p]],
        })
        .collect();

    let sweep = |machine: &mut Machine, y: &mut Vec<Vec<f64>>, areas: &mut Vec<RankArea>| {
        gather_inline(
            machine,
            &inspect.schedule,
            &x,
            areas.iter_mut().map(|a| &mut a.ghosts),
        );
        machine.run_sweep(
            &mut y[..],
            &mut areas[..],
            |ctx, y_local, area| {
                let rank = ctx.rank();
                area.contrib.fill(0.0);
                let x_local = x.local(rank);
                let mut owned = 0u32;
                for r in &inspect.localized[rank] {
                    match *r {
                        LocalRef::Owned(off) => {
                            y_local[off as usize] += 2.0 * x_local[off as usize];
                            owned += 1;
                        }
                        LocalRef::Ghost(slot) => {
                            area.contrib[slot as usize] += 2.0 * area.ghosts[slot as usize];
                        }
                    }
                }
                ctx.charge_compute(rank, owned as f64);
            },
            1,
            |_areas, _j| true,
            |ctx, _j| scatter_pack_kernel(ctx, &inspect.schedule),
            |ctx, _j, y_local, areas| {
                scatter_combine_rows(
                    ctx,
                    &inspect.schedule,
                    |p| areas[p].contrib.as_slice(),
                    &mut y_local[..],
                    &|a, b| *a += b,
                );
            },
        );
    };

    // Disabled metrics: a registry was installed once and then removed, so
    // the `None` branch of every hook is the one actually running.
    let registry = Arc::new(MetricsRegistry::new(0));
    machine.install_metrics(Some(Arc::clone(&registry)));
    machine.install_metrics(None);
    for _ in 0..3 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let disabled_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        disabled_allocs, 0,
        "disabled-metrics steady-state sweeps allocated {disabled_allocs} times"
    );

    // Enabled metrics: the shards were preallocated at construction, so
    // counting and span recording every sweep still allocates nothing.
    machine.install_metrics(Some(Arc::clone(&registry)));
    for _ in 0..3 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let epochs_before = registry.snapshot().counter(Counter::Epochs);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        sweep(&mut machine, &mut y, &mut areas);
    }
    let enabled_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        enabled_allocs, 0,
        "enabled-metrics steady-state sweeps allocated {enabled_allocs} times"
    );
    // The metered sweeps really recorded: ten more epochs and fresh spans.
    let snap = registry.snapshot();
    assert_eq!(snap.counter(Counter::Epochs), epochs_before + 10);
    assert!(snap.counter(Counter::KernelRuns) > 0);
    assert!(snap.counter(Counter::PackMessages) > 0);
    assert!(!snap.spans.is_empty(), "no span histograms recorded");
}

/// Incremental cross-loop re-binding must not perturb the steady-state heap
/// profile either: once two loops over the same distribution have bound
/// into the shared ghost region, a steady-state iteration is two
/// offset-gathers (the second fetching only the ghosts the first didn't)
/// plus slot-map reads out of the shared region rows — all into reused
/// buffers, zero allocations.
#[test]
fn steady_state_incremental_region_gather_is_allocation_free() {
    use chaos_repro::runtime::{gather_inline_offset, Dad, Inspector, ReuseRegistry};

    let nprocs = 8;
    let n = 4096usize;
    let map: Vec<u32> = (0..n).map(|i| ((i * 7 + i / 13) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 1.0 + (i % 97) as f64).collect();
    let x = DistArray::from_global("x", dist.clone(), &data);

    // Two overlapping access patterns over the same distribution: the
    // second repeats half the first loop's references and adds new ones.
    let mut first = AccessPattern::new(nprocs);
    let mut second = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for k in 0..512 {
            let r = ((p * 131 + k * 17) % n) as u32;
            first.refs[p].push(r);
            second.refs[p].push(if k % 2 == 0 {
                r
            } else {
                ((p * 173 + k * 29) % n) as u32
            });
        }
    }

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let r1 = Inspector.localize(&mut machine, "L1", &dist, &first);
    let r2 = Inspector.localize(&mut machine, "L2", &dist, &second);

    // Bind both loops into the shared ghost region (inspector-time work,
    // done once). The second bind's difference must be a strict subset.
    let mut registry = ReuseRegistry::new();
    let sig = Dad::of(&dist).signature();
    let rb1 = registry.region_bind(sig, 1, &r1.schedule);
    let rb2 = registry.region_bind(sig, 2, &r2.schedule);
    assert!(
        rb2.diff.total_ghosts() < r2.schedule.total_ghosts(),
        "second loop should re-bind resident ghosts instead of refetching"
    );
    let region = registry.region(sig).expect("region exists");
    let mut rows: Vec<Vec<f64>> = (0..nprocs).map(|p| vec![0.0; region.size(p)]).collect();

    machine.set_phase_kind(Some(PhaseKind::Executor));
    let mut acc = vec![0.0f64; nprocs];
    let sweep = |machine: &mut Machine, rows: &mut Vec<Vec<f64>>, acc: &mut Vec<f64>| {
        gather_inline_offset(machine, &rb1.diff, &x, &rb1.base, rows.iter_mut());
        gather_inline_offset(machine, &rb2.diff, &x, &rb2.base, rows.iter_mut());
        // Read every ghost of both loops through its slot map — the region
        // rows serve both loops' reads without a second fetch.
        for p in 0..nprocs {
            let mut sum = 0.0;
            for g in 0..r1.schedule.ghost_count(p) {
                sum += rows[p][rb1.slot_map[p][g] as usize];
            }
            for g in 0..r2.schedule.ghost_count(p) {
                sum += rows[p][rb2.slot_map[p][g] as usize];
            }
            acc[p] += sum;
            machine.charge_compute(
                p,
                (r1.schedule.ghost_count(p) + r2.schedule.ghost_count(p)) as f64,
            );
        }
    };

    for _ in 0..3 {
        sweep(&mut machine, &mut rows, &mut acc);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let messages_before = machine.stats().grand_totals().messages;
    for _ in 0..10 {
        sweep(&mut machine, &mut rows, &mut acc);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state incremental region gathers allocated {} times",
        after - before
    );
    // The sweeps really gathered (both loops' fetches charge messages) and
    // the slot maps really addressed every resident ghost value.
    assert!(machine.stats().grand_totals().messages > messages_before);
    assert!(acc.iter().all(|v| *v > 0.0));
    assert!(machine.elapsed().max_seconds() > 0.0);
}

/// Checkpoint / rollback of a steady epoch must also be allocation-free:
/// `Machine::snapshot_into` / `restore_from` reuse the snapshot's buffers,
/// and `DistArray::copy_values_from` overwrites shard values in place. This
/// is what keeps the executor's epoch-checkpoint cadence from perturbing the
/// steady-state heap profile.
#[test]
fn checkpoint_and_rollback_of_a_steady_epoch_are_allocation_free() {
    use chaos_repro::dmsim::MachineSnapshot;
    use chaos_repro::runtime::charge_checkpoint;

    let nprocs = 8;
    let n = 4096usize;
    let map: Vec<u32> = (0..n).map(|i| ((i * 5 + i / 11) % nprocs) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, nprocs);
    let data: Vec<f64> = (0..n).map(|i| 0.5 + (i % 89) as f64).collect();
    let mut y = DistArray::from_global("y", dist.clone(), &data);
    let mut ckpt_y = y.clone();

    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    machine.set_phase_kind(Some(PhaseKind::Executor));
    let mut snap = MachineSnapshot::new();
    let rank_words: Vec<usize> = (0..nprocs).map(|p| y.local(p).len()).collect();

    let iteration = |machine: &mut Machine,
                     y: &mut DistArray<f64>,
                     ckpt_y: &mut DistArray<f64>,
                     snap: &mut MachineSnapshot| {
        // Refresh the checkpoint: charge the modeled scan cost, then copy
        // the machine state and the array values into the reused buffers.
        charge_checkpoint(machine, &rank_words);
        machine.snapshot_into(snap);
        ckpt_y.copy_values_from(y);
        // One epoch of work that dirties both the values and the clocks.
        for p in 0..nprocs {
            let y_local = y.local_mut(p);
            for v in y_local.iter_mut() {
                *v = *v * 1.0001 + 0.25;
            }
            machine.charge_compute(p, y.local(p).len() as f64);
        }
        // Injected failure: roll the epoch back.
        machine.restore_from(snap);
        y.copy_values_from(ckpt_y);
    };

    // Warm-up grows the snapshot buffers and the per-kind stats entries.
    for _ in 0..3 {
        iteration(&mut machine, &mut y, &mut ckpt_y, &mut snap);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let epoch_before = machine.epoch();
    for _ in 0..10 {
        iteration(&mut machine, &mut y, &mut ckpt_y, &mut snap);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state checkpoint/rollback allocated {} times",
        after - before
    );
    // The rollbacks really happened: values match the checkpoint bit for
    // bit, and only the checkpoint-scan epochs advanced the machine.
    for p in 0..nprocs {
        for (a, b) in y.local(p).iter().zip(ckpt_y.local(p)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(machine.epoch(), epoch_before + 10);
    assert!(machine.elapsed().max_seconds() > 0.0);
}
