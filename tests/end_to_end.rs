//! Cross-crate integration tests: the full pipeline from workload generation
//! through partitioning, remapping, inspection and execution, exercised both
//! through the hand-coded runtime API and through the mini-language
//! ("compiler-generated") path.

use chaos_repro::prelude::*;
use chaos_repro::runtime::iterpart::partition_iterations;
use chaos_repro::runtime::{
    gather, scatter_add, GeoColSpec, Inspector, IterPartitionPolicy, LocalRef, MapperCoupler,
};
use chaos_repro::workloads::edge_flux_kernel;

/// Sequential reference for one edge sweep.
fn sequential_sweep(mesh: &UnstructuredMesh, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; mesh.nnodes()];
    for (&a, &b) in mesh.end_pt1.iter().zip(&mesh.end_pt2) {
        let (f1, f2) = edge_flux_kernel(x[a as usize], x[b as usize]);
        y[a as usize] += f1;
        y[b as usize] += f2;
    }
    y
}

/// Run the full hand-coded pipeline for a given partitioner name; return the
/// global result and the executor's modeled time.
fn run_pipeline(
    mesh: &UnstructuredMesh,
    state: &[f64],
    nprocs: usize,
    partitioner: Option<&str>,
) -> (Vec<f64>, f64) {
    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let mut registry = ReuseRegistry::new();
    let node_dist = Distribution::block(mesh.nnodes(), nprocs);
    let edge_dist = Distribution::block(mesh.nedges(), nprocs);
    let mut x = DistArray::from_global("x", node_dist.clone(), state);
    let mut y = DistArray::from_global("y", node_dist.clone(), &vec![0.0; mesh.nnodes()]);
    let e1 = DistArray::from_global("e1", edge_dist.clone(), &mesh.end_pt1);
    let e2 = DistArray::from_global("e2", edge_dist.clone(), &mesh.end_pt2);

    let mut dist = node_dist;
    if let Some(name) = partitioner {
        let spec = if name == "RSB" {
            GeoColSpec::new(mesh.nnodes()).with_link(&e1, &e2)
        } else {
            let xc = DistArray::from_global("xc", dist.clone(), &mesh.xc);
            let geocol = MapperCoupler.construct_geocol(
                &mut machine,
                &GeoColSpec::new(mesh.nnodes())
                    .with_geometry(vec![&xc])
                    .with_link(&e1, &e2),
            );
            let p = chaos_repro::geocol::partitioner_by_name(name).unwrap();
            let outcome = MapperCoupler.partition(&mut machine, p.as_ref(), &geocol);
            MapperCoupler.redistribute(&mut machine, &mut registry, &mut x, &outcome.distribution);
            MapperCoupler.redistribute(&mut machine, &mut registry, &mut y, &outcome.distribution);
            let before = machine.phase_elapsed(PhaseKind::Executor);
            let (yg, texec) = execute(&mut machine, mesh, &outcome.distribution, &x, &mut y, 5);
            return (yg, texec - before);
        };
        let geocol = MapperCoupler.construct_geocol(&mut machine, &spec);
        let p = chaos_repro::geocol::partitioner_by_name(name).unwrap();
        let outcome = MapperCoupler.partition(&mut machine, p.as_ref(), &geocol);
        MapperCoupler.redistribute(&mut machine, &mut registry, &mut x, &outcome.distribution);
        MapperCoupler.redistribute(&mut machine, &mut registry, &mut y, &outcome.distribution);
        dist = outcome.distribution;
    }
    let (yg, texec) = execute(&mut machine, mesh, &dist, &x, &mut y, 5);
    (yg, texec)
}

/// Inspector + `sweeps` executor sweeps; returns the final global y and the
/// executor phase time.
fn execute(
    machine: &mut Machine,
    mesh: &UnstructuredMesh,
    dist: &Distribution,
    x: &DistArray<f64>,
    y: &mut DistArray<f64>,
    sweeps: usize,
) -> (Vec<f64>, f64) {
    let nprocs = machine.nprocs();
    let iter_part = partition_iterations(
        machine,
        dist,
        &mesh.edge_iteration_refs(),
        IterPartitionPolicy::AlmostOwnerComputes,
    );
    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for &it in iter_part.iters(p) {
            pattern.refs[p].push(mesh.end_pt1[it as usize]);
            pattern.refs[p].push(mesh.end_pt2[it as usize]);
        }
    }
    let inspect = Inspector.localize(machine, "L2", dist, &pattern);
    machine.set_phase_kind(Some(PhaseKind::Executor));
    for _ in 0..sweeps {
        let ghosts = gather(machine, "L2", &inspect.schedule, x);
        let mut contributions: Vec<Vec<f64>> = (0..nprocs)
            .map(|p| vec![0.0; inspect.ghost_counts[p]])
            .collect();
        for p in 0..nprocs {
            let localized = &inspect.localized[p];
            let mut updates = Vec::with_capacity(localized.len());
            for it in 0..iter_part.iters(p).len() {
                let (r1, r2) = (localized[2 * it], localized[2 * it + 1]);
                let v1 = *r1.resolve(x.local(p), &ghosts[p]);
                let v2 = *r2.resolve(x.local(p), &ghosts[p]);
                let (f1, f2) = edge_flux_kernel(v1, v2);
                updates.push((r1, f1));
                updates.push((r2, f2));
            }
            let y_local = y.local_mut(p);
            for (r, f) in updates {
                match r {
                    LocalRef::Owned(off) => y_local[off as usize] += f,
                    LocalRef::Ghost(slot) => contributions[p][slot as usize] += f,
                }
            }
        }
        scatter_add(machine, "L2", &inspect.schedule, y, &contributions);
    }
    let t = machine.phase_elapsed(PhaseKind::Executor);
    machine.set_phase_kind(None);
    (y.to_global(), t)
}

#[test]
fn parallel_pipeline_matches_sequential_reference_for_every_partitioner() {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(800));
    let state: Vec<f64> = (0..mesh.nnodes())
        .map(|i| 1.0 + (i as f64 * 0.21).sin())
        .collect();
    let mut expected = vec![0.0; mesh.nnodes()];
    for _ in 0..5 {
        let once = sequential_sweep(&mesh, &state);
        for (e, o) in expected.iter_mut().zip(&once) {
            *e += o;
        }
    }
    for partitioner in [
        None,
        Some("RCB"),
        Some("RSB"),
        Some("INERTIAL"),
        Some("CYCLIC"),
    ] {
        let (got, _) = run_pipeline(&mesh, &state, 8, partitioner);
        for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "partitioner {partitioner:?}, node {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn irregular_partitioning_beats_block_executor_time() {
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(2000));
    let state: Vec<f64> = (0..mesh.nnodes()).map(|i| (i as f64).cos()).collect();
    let (_, block_time) = run_pipeline(&mesh, &state, 8, None);
    let (_, rsb_time) = run_pipeline(&mesh, &state, 8, Some("RSB"));
    assert!(
        block_time > 1.3 * rsb_time,
        "BLOCK executor {block_time} should exceed RSB executor {rsb_time}"
    );
}

#[test]
fn compiler_path_agrees_with_handcoded_path() {
    use chaos_repro::lang::{lower_program, parse_program, Executor, ProgramInputs};
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(500));
    let state: Vec<f64> = (0..mesh.nnodes())
        .map(|i| 1.0 + (i as f64 * 0.4).cos())
        .collect();

    let src = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, end_pt1, end_pt2)
C$      CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$      SET distfmt BY PARTITIONING G USING RCB
C$      REDISTRIBUTE reg(distfmt)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#
    .replace("USING RCB", "USING RSB");
    let program = lower_program(parse_program(&src).unwrap()).unwrap();
    let inputs = ProgramInputs::new()
        .scalar("nnode", mesh.nnodes())
        .scalar("nedge", mesh.nedges())
        .real("x", state.clone())
        .real("y", vec![0.0; mesh.nnodes()])
        .int("end_pt1", mesh.end_pt1.iter().map(|&v| v + 1).collect())
        .int("end_pt2", mesh.end_pt2.iter().map(|&v| v + 1).collect());
    let mut exec = Executor::new(MachineConfig::ipsc860(4), inputs);
    exec.run(&program).unwrap();
    for _ in 1..5 {
        exec.execute_loop(&program, "L1").unwrap();
    }
    let compiler_y = exec.real_global("y").unwrap();

    let (hand_y, _) = run_pipeline(&mesh, &state, 4, Some("RSB"));
    for (i, (a, b)) in compiler_y.iter().zip(&hand_y).enumerate() {
        assert!((a - b).abs() < 1e-9, "node {i}: compiler {a} vs hand {b}");
    }
    // Schedule reuse kicked in for the repeated sweeps.
    assert_eq!(exec.report().inspector_runs, 1);
    assert_eq!(exec.report().reuse_hits, 4);
}

#[test]
fn partition_quality_ordering_on_shuffled_mesh() {
    use chaos_repro::geocol::{
        BlockPartitioner, GeoColBuilder, PartitionQuality, Partitioner, RcbPartitioner,
        RsbPartitioner,
    };
    let mesh = UnstructuredMesh::generate(MeshConfig::tiny(1500));
    let geocol = GeoColBuilder::new(mesh.nnodes())
        .geometry(vec![mesh.xc.clone(), mesh.yc.clone(), mesh.zc.clone()])
        .link(mesh.end_pt1.clone(), mesh.end_pt2.clone())
        .build()
        .unwrap();
    let cut = |p: &dyn Partitioner| {
        PartitionQuality::evaluate(&geocol, &p.partition(&geocol, 16)).edge_cut
    };
    let block = cut(&BlockPartitioner);
    let rcb = cut(&RcbPartitioner);
    let rsb = cut(&RsbPartitioner::default());
    assert!(
        rcb * 2 < block,
        "RCB cut {rcb} should be well below BLOCK cut {block}"
    );
    assert!(
        rsb * 2 < block,
        "RSB cut {rsb} should be well below BLOCK cut {block}"
    );
}

#[test]
fn md_pipeline_runs_end_to_end() {
    // The MD workload exercised through the same runtime path.
    let water = WaterBox::generate(MdConfig::tiny(64));
    let nprocs = 8;
    let mut machine = Machine::new(MachineConfig::ipsc860(nprocs));
    let dist = Distribution::block(water.natoms(), nprocs);
    let q = DistArray::from_global("q", dist.clone(), &water.charge);
    let mut f = DistArray::from_global("f", dist.clone(), &vec![0.0; water.natoms()]);

    let iter_part = partition_iterations(
        &mut machine,
        &dist,
        &water.pair_iteration_refs(),
        IterPartitionPolicy::AlmostOwnerComputes,
    );
    let mut pattern = AccessPattern::new(nprocs);
    for p in 0..nprocs {
        for &it in iter_part.iters(p) {
            pattern.refs[p].push(water.pair1[it as usize]);
            pattern.refs[p].push(water.pair2[it as usize]);
        }
    }
    let inspect = Inspector.localize(&mut machine, "md", &dist, &pattern);
    let ghosts = gather(&mut machine, "md", &inspect.schedule, &q);
    let mut contributions: Vec<Vec<f64>> = (0..nprocs)
        .map(|p| vec![0.0; inspect.ghost_counts[p]])
        .collect();
    for p in 0..nprocs {
        let mut updates = Vec::new();
        for it in 0..iter_part.iters(p).len() {
            let (r1, r2) = (
                inspect.localized[p][2 * it],
                inspect.localized[p][2 * it + 1],
            );
            let qa = *r1.resolve(q.local(p), &ghosts[p]);
            let qb = *r2.resolve(q.local(p), &ghosts[p]);
            updates.push((r1, qa * qb));
            updates.push((r2, -(qa * qb)));
        }
        let f_local = f.local_mut(p);
        for (r, v) in updates {
            match r {
                LocalRef::Owned(off) => f_local[off as usize] += v,
                LocalRef::Ghost(slot) => contributions[p][slot as usize] += v,
            }
        }
    }
    scatter_add(
        &mut machine,
        "md",
        &inspect.schedule,
        &mut f,
        &contributions,
    );

    // Reference.
    let mut expected = vec![0.0; water.natoms()];
    for (&a, &b) in water.pair1.iter().zip(&water.pair2) {
        let v = water.charge[a as usize] * water.charge[b as usize];
        expected[a as usize] += v;
        expected[b as usize] -= v;
    }
    let got = f.to_global();
    for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
        assert!((a - b).abs() < 1e-9, "atom {i}: {a} vs {b}");
    }
}
