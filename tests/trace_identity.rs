//! The flight recorder is an **observer**: enabling tracing must never
//! change what an engine computes. These tests drive randomized pipelines
//! through all three engines — `Machine` (sequential oracle),
//! `ThreadedBackend`, `PooledBackend` — twice each, once with a `TraceSink`
//! installed and once without, and assert the runs are bit-identical in
//! every observable (array values, ghost buffers, the f64 bit patterns of
//! the modeled clocks, and the communication statistics). The traced runs
//! must additionally have recorded a well-nested timeline, and a diagnosed
//! `Straggler` must arrive with the hung lane's flight-recorder tail.

use chaos_repro::dmsim::{
    Backend, FaultKind, FaultPlan, PhaseError, PooledBackend, ThreadedBackend, Topology,
    TraceEventKind, TraceSink,
};
use chaos_repro::prelude::*;
use chaos_repro::runtime::{gather, scatter_add, Inspector, LocalRef};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Everything one pipeline run observes: all of it must be unchanged by
/// installing a trace sink.
#[derive(Debug, PartialEq)]
struct Obs {
    ghost_bits: Vec<Vec<u64>>,
    y_bits: Vec<u64>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    phases: usize,
    comm_seconds_bits: u64,
    record_labels: Vec<String>,
    epoch: u64,
}

/// Localize → gather → rank-parallel compute → scatter-add on any engine.
fn run_pipeline<B: Backend>(
    backend: &mut B,
    dist: &Distribution,
    data: &[f64],
    pattern: &AccessPattern,
) -> Obs {
    let n = data.len();
    let x = DistArray::from_global("x", dist.clone(), data);
    let result = Inspector.localize(backend, "L", dist, pattern);
    let ghosts = gather(backend, "L", &result.schedule, &x);

    let mut y = DistArray::from_global("y", dist.clone(), &vec![1.0; n]);
    let mut contributions: Vec<Vec<f64>> = ghosts.clone();
    backend.run_compute(
        y.par_shards_mut().zip(contributions.iter_mut()),
        |ctx, (y_local, contrib): (&mut [f64], &mut Vec<f64>)| {
            let q = ctx.rank();
            contrib.fill(0.0);
            for r in &result.localized[q] {
                match *r {
                    LocalRef::Owned(off) => y_local[off as usize] += 2.0 * x.local(q)[off as usize],
                    LocalRef::Ghost(slot) => {
                        contrib[slot as usize] += 2.0 * ghosts[q][slot as usize]
                    }
                }
            }
            ctx.charge_compute(q, result.localized[q].len() as f64);
        },
    );
    scatter_add(backend, "L", &result.schedule, &mut y, &contributions);

    let machine = backend.machine();
    let elapsed = machine.elapsed();
    let totals = machine.stats().grand_totals();
    Obs {
        ghost_bits: ghosts
            .iter()
            .map(|g| g.iter().map(|v| v.to_bits()).collect())
            .collect(),
        y_bits: y.to_global().iter().map(|v| v.to_bits()).collect(),
        clock_bits: (0..machine.nprocs())
            .map(|p| {
                (
                    elapsed.compute[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: totals.messages,
        bytes: totals.bytes,
        phases: totals.phases,
        comm_seconds_bits: totals.comm_seconds.to_bits(),
        record_labels: machine
            .stats()
            .records()
            .iter()
            .map(|r| format!("{}:{:?}:{}b", r.label, r.kind, r.stats.bytes))
            .collect(),
        epoch: machine.epoch(),
    }
}

fn build_pattern(p: usize, n: usize, seed: u64, refs_per_proc: usize) -> AccessPattern {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(29);
    let mut pattern = AccessPattern::new(p);
    for q in 0..p {
        for _ in 0..refs_per_proc {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            pattern.refs[q].push(((state >> 33) as usize % n) as u32);
        }
    }
    pattern
}

/// The traced run must have actually traced: events were retained and every
/// lane's span events nest monotonically.
fn assert_traced(sink: &TraceSink, engine: &str) {
    sink.finish();
    let total: usize = (0..sink.lanes()).map(|l| sink.events(l).len()).sum();
    assert!(total > 0, "{engine}: traced run recorded no events");
    sink.check_span_nesting()
        .unwrap_or_else(|e| panic!("{engine}: {e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: on every engine, a run with a `TraceSink` installed is
    /// bit-identical to the same run without one — values, ghost buffers,
    /// modeled clock bits, `CommStats` and the per-phase record stream.
    #[test]
    fn traced_runs_are_bit_identical_to_untraced_on_all_engines(
        p in 2usize..=6,
        n in 16usize..200,
        seed in 0u64..1000,
        refs_per_proc in 1usize..32,
    ) {
        let map: Vec<u32> = (0..n).map(|i| ((i as u64 * 31 + seed) % p as u64) as u32).collect();
        let dist = Distribution::irregular_from_map(&map, p);
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 0.41 - 3.0).collect();
        let pattern = build_pattern(p, n, seed, refs_per_proc);
        let cfg = || MachineConfig::unit(p).with_topology(Topology::FullyConnected);
        let workers = 1 + (seed as usize % 5);

        // Sequential oracle.
        let mut plain = Machine::new(cfg());
        let want = run_pipeline(&mut plain, &dist, &data, &pattern);
        let mut traced = Machine::new(cfg());
        let sink = Arc::new(TraceSink::new(0));
        traced.install_trace(Some(Arc::clone(&sink)));
        prop_assert_eq!(&run_pipeline(&mut traced, &dist, &data, &pattern), &want);
        assert_traced(&sink, "sequential");

        // Scoped-thread engine (one lane per rank).
        let mut thr = ThreadedBackend::from_config(cfg());
        prop_assert_eq!(&run_pipeline(&mut thr, &dist, &data, &pattern), &want);
        let mut thr_traced = ThreadedBackend::from_config(cfg());
        let sink = Arc::new(TraceSink::new(p));
        thr_traced.machine_mut().install_trace(Some(Arc::clone(&sink)));
        prop_assert_eq!(&run_pipeline(&mut thr_traced, &dist, &data, &pattern), &want);
        assert_traced(&sink, "threaded");

        // Worker pool (ranks striped over `workers` lanes).
        let mut pool = PooledBackend::with_workers(Machine::new(cfg()), workers);
        prop_assert_eq!(&run_pipeline(&mut pool, &dist, &data, &pattern), &want);
        let mut pool_traced = PooledBackend::with_workers(Machine::new(cfg()), workers);
        let sink = Arc::new(TraceSink::new(workers));
        pool_traced.machine_mut().install_trace(Some(Arc::clone(&sink)));
        prop_assert_eq!(&run_pipeline(&mut pool_traced, &dist, &data, &pattern), &want);
        assert_traced(&sink, "pooled");
    }
}

/// A `Straggler` diagnosis must arrive with the flight-recorder tail
/// attached: the hung lane's kernel entry, the injected fault that stalled
/// it, and the diagnosis instant itself are all in the captured tail.
#[test]
fn straggler_error_carries_the_hung_lanes_flight_recorder_tail() {
    // Two lanes: the driver takes the last lane, so rank 0 runs on the
    // spawned worker (lane 0). Stall it well past the barrier deadline.
    let mut pool = PooledBackend::from_config_with_workers(MachineConfig::unit(2), 2)
        .with_barrier_deadline(Duration::from_millis(5));
    let sink = Arc::new(TraceSink::new(2));
    pool.machine_mut().install_trace(Some(Arc::clone(&sink)));
    let plan = FaultPlan::new()
        .with_stall(Duration::from_millis(120))
        .with_fault(1, 0, FaultKind::LaneStall);
    pool.machine_mut().install_fault_plan(Some(Arc::new(plan)));

    let mut out = [0u64; 2];
    let err = pool
        .try_run_compute(out.iter_mut(), |ctx, slot| *slot = ctx.rank() as u64 + 1)
        .unwrap_err();
    let (rank, lane) = match err {
        PhaseError::Straggler { rank, lane, .. } => (rank, lane),
        other => panic!("expected Straggler, got {other:?}"),
    };
    assert_eq!((rank, lane), (0, 0));

    let tail = sink.error_tail();
    assert!(
        !tail.is_empty(),
        "diagnosis captured no flight-recorder tail"
    );
    assert!(
        tail.iter().any(|e| e.lane == lane
            && e.kind == TraceEventKind::KernelEnter
            && e.arg == rank as u32),
        "tail is missing the hung lane's kernel entry"
    );
    assert!(
        tail.iter().any(|e| e.lane == lane
            && e.kind == TraceEventKind::FaultFired
            && e.arg == rank as u32),
        "tail is missing the injected fault on the hung lane"
    );
    assert!(
        tail.iter()
            .any(|e| e.kind == TraceEventKind::ErrorDiagnosed),
        "tail is missing the diagnosis instant"
    );
}

/// The lang executor's `with_trace` builder: a traced pooled executor run —
/// fused sweeps, checkpoint refreshes and all — is bit-identical to the
/// untraced one, and its timeline summarizes into epochs and lane activity.
#[test]
fn traced_lang_executor_matches_untraced_and_summarizes() {
    const SRC: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, end_pt1, end_pt2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;
    let (nnode, nedge, nprocs, workers) = (96usize, 384usize, 4usize, 3usize);
    let inputs = ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .real(
            "x",
            (0..nnode).map(|i| (i as f64 * 0.7).cos() + 2.0).collect(),
        )
        .real("y", vec![0.0; nnode])
        .int(
            "end_pt1",
            (0..nedge).map(|i| (i % nnode) as u32 + 1).collect(),
        )
        .int(
            "end_pt2",
            (0..nedge)
                .map(|i| ((i * 7 + 3) % nnode) as u32 + 1)
                .collect(),
        );
    let cp = lower_program(parse_program(SRC).expect("parse")).expect("lower");

    let drive = |sink: Option<Arc<TraceSink>>| {
        let mut exec = Executor::new_pooled_with_workers(
            MachineConfig::ipsc860(nprocs),
            workers,
            inputs.clone(),
        )
        .with_checkpoint_every(4);
        if let Some(s) = sink {
            exec = exec.with_trace(s);
        }
        exec.run(&cp).expect("program runs");
        for _ in 0..6 {
            exec.execute_loop(&cp, "L1").expect("sweep");
        }
        let e = exec.machine().elapsed();
        let s = exec.machine().stats().grand_totals();
        (
            exec.real_global("y")
                .expect("y")
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            e.per_proc.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            (s.messages, s.bytes, s.phases, s.comm_seconds.to_bits()),
            exec.machine().epoch(),
        )
    };

    let want = drive(None);
    let sink = Arc::new(TraceSink::new(workers));
    let got = drive(Some(Arc::clone(&sink)));
    assert_eq!(got, want, "tracing perturbed the executor run");

    sink.finish();
    sink.check_span_nesting().expect("span nesting");
    let summary = sink.summary();
    assert!(summary.epochs > 0, "no epochs observed");
    assert!(
        summary.lanes.iter().any(|l| l.busy_ns > 0),
        "no lane recorded kernel work"
    );
    // The checkpoint cadence left its refresh instants on the driver ring.
    assert!(
        sink.events(sink.driver_lane())
            .iter()
            .any(|e| e.kind == TraceEventKind::CheckpointRefresh),
        "no checkpoint-refresh events on the driver ring"
    );
    // The modeled clock published at the end matches the machine's.
    assert!(summary.modeled_s > 0.0);
}
