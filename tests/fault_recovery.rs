//! Fault injection, detection and recovery, end-to-end through the
//! language executor on all three engines.
//!
//! The recovery contract is *discard and re-run*: a failed phase never
//! replayed its charge ledgers onto the machine, and the executor restores
//! a pre-sweep (or checkpoint) snapshot before re-running, so a recovered
//! run must be **bit-identical** — array values, per-processor clock f64
//! bits, communication statistics, execution report — to a fault-free run
//! of the same program under the same checkpoint configuration.

use chaos_repro::dmsim::{Backend, FaultKind, FaultPlan, PhaseError, RecoveryPolicy};
use chaos_repro::lang::{CompiledProgram, LangError};
use chaos_repro::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const EDGE_PROGRAM: &str = r#"
    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK)
    DISTRIBUTE reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    CALL READ_DATA(x, y, end_pt1, end_pt2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
      REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
    END FORALL
"#;

const NPROCS: usize = 4;
const SWEEPS: usize = 4;

fn program() -> CompiledProgram {
    lower_program(parse_program(EDGE_PROGRAM).unwrap()).unwrap()
}

/// Randomly connected edges so the inspector and executor move real
/// off-processor data.
fn inputs(nnode: usize, nedge: usize) -> ProgramInputs {
    let mut state = 0xFA_17u64;
    let mut next = |m: usize| -> u32 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize % m) as u32 + 1
    };
    let mut e1 = Vec::with_capacity(nedge);
    let mut e2 = Vec::with_capacity(nedge);
    for _ in 0..nedge {
        let a = next(nnode);
        let mut b = next(nnode);
        if b == a {
            b = a % nnode as u32 + 1;
        }
        e1.push(a);
        e2.push(b);
    }
    let x: Vec<f64> = (0..nnode).map(|i| (i as f64 * 0.41).sin() + 2.0).collect();
    ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .real("x", x)
        .real("y", vec![0.0; nnode])
        .int("end_pt1", e1)
        .int("end_pt2", e2)
}

/// Everything that must match between a recovered run and a fault-free one.
#[derive(Debug, PartialEq)]
struct Observation {
    y_bits: Vec<u64>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    phases: usize,
    comm_seconds_bits: u64,
    report: chaos_repro::lang::ExecReport,
    epoch: u64,
}

fn observe<B: Backend>(exec: &Executor<B>) -> Observation {
    let elapsed = exec.machine().elapsed();
    let stats = exec.machine().stats().grand_totals();
    Observation {
        y_bits: exec
            .real_global("y")
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        clock_bits: (0..exec.machine().nprocs())
            .map(|p| {
                (
                    elapsed.per_proc[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: stats.messages,
        bytes: stats.bytes,
        phases: stats.phases,
        comm_seconds_bits: stats.comm_seconds.to_bits(),
        report: exec.report().clone(),
        epoch: exec.machine().epoch(),
    }
}

/// Drive a full run plus `SWEEPS` extra executor sweeps and snapshot it.
fn drive<B: Backend>(
    exec: &mut Executor<B>,
    cp: &CompiledProgram,
) -> Result<Observation, LangError> {
    exec.run(cp)?;
    for _ in 0..SWEEPS {
        exec.execute_loop(cp, "L1")?;
    }
    Ok(observe(exec))
}

/// Epoch range spanned by the post-preamble sweeps under a given checkpoint
/// cadence (faults scheduled inside this range hit the executor sweeps, not
/// the directive preamble).
fn sweep_epochs(cp: &CompiledProgram, checkpoint_every: u64) -> (u64, u64) {
    let mut probe = Executor::new(MachineConfig::ipsc860(NPROCS), inputs(120, 480))
        .with_checkpoint_every(checkpoint_every);
    probe.run(cp).unwrap();
    let start = probe.machine().epoch();
    for _ in 0..SWEEPS {
        probe.execute_loop(cp, "L1").unwrap();
    }
    (start, probe.machine().epoch())
}

fn retry() -> RecoveryPolicy {
    RecoveryPolicy::RetryPhase {
        max_attempts: 3,
        backoff: Duration::ZERO,
    }
}

#[test]
fn injected_panic_recovers_bit_identically_on_all_three_engines() {
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    assert!(e1 > e0 + 2, "sweeps must span several epochs");
    let mid = e0 + (e1 - e0) / 2;
    let plan = || {
        Arc::new(
            FaultPlan::new()
                .with_fault(e0 + 1, 1, FaultKind::KernelPanic)
                .with_fault(mid, NPROCS - 1, FaultKind::KernelPanic),
        )
    };
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(120, 480);

    let mut clean = Executor::new(cfg(), ins());
    let want = drive(&mut clean, &cp).unwrap();

    let mut seq = Executor::new(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut seq, &cp).unwrap(), want, "sequential engine");

    let mut thr = Executor::new_threaded(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut thr, &cp).unwrap(), want, "threaded engine");

    let mut pool = Executor::new_pooled_with_workers(cfg(), 3, ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut pool, &cp).unwrap(), want, "pooled engine");
}

#[test]
fn corruption_recovers_bit_identically_on_all_three_engines() {
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    let mid = e0 + (e1 - e0) / 2;
    let plan = || Arc::new(FaultPlan::new().with_fault(mid, 0, FaultKind::MailboxCorruption));
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(100, 400);

    let mut clean = Executor::new(cfg(), ins());
    let want = drive(&mut clean, &cp).unwrap();

    let mut seq = Executor::new(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut seq, &cp).unwrap(), want, "sequential engine");

    let mut thr = Executor::new_threaded(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut thr, &cp).unwrap(), want, "threaded engine");

    let mut pool = Executor::new_pooled_with_workers(cfg(), 3, ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut pool, &cp).unwrap(), want, "pooled engine");
}

#[test]
fn stall_is_detected_by_the_pool_deadline_and_recovered_bit_identically() {
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    let mid = e0 + (e1 - e0) / 2;
    // Rank 0 runs on a spawned worker lane (the driver takes the last
    // lane), so the stall leaves the driver waiting at the barrier.
    let plan = Arc::new(
        FaultPlan::new()
            .with_stall(Duration::from_millis(100))
            .with_fault(mid, 0, FaultKind::LaneStall),
    );
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(100, 400);

    let mut clean = Executor::new_pooled_with_workers(cfg(), 2, ins());
    let want = drive(&mut clean, &cp).unwrap();

    let mut pool = Executor::new_pooled_with_workers(cfg(), 2, ins())
        .with_barrier_deadline(Duration::from_millis(5))
        .with_fault_plan(plan)
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut pool, &cp).unwrap(), want, "straggler recovery");
}

#[test]
fn stall_without_a_deadline_is_harmless_wall_clock_delay() {
    // No barrier deadline armed: the stall slows the real run but charges
    // nothing to the modeled clocks, so the run completes identically with
    // no error.
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    let mid = e0 + (e1 - e0) / 2;
    let plan = Arc::new(
        FaultPlan::new()
            .with_stall(Duration::from_millis(30))
            .with_fault(mid, 1, FaultKind::LaneStall),
    );
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(100, 400);

    let mut clean = Executor::new(cfg(), ins());
    let want = drive(&mut clean, &cp).unwrap();

    let mut seq = Executor::new(cfg(), ins()).with_fault_plan(plan);
    assert_eq!(drive(&mut seq, &cp).unwrap(), want);
}

#[test]
fn abort_policy_surfaces_a_typed_phase_error() {
    let cp = program();
    let (e0, _) = sweep_epochs(&cp, 0);
    let plan = Arc::new(FaultPlan::new().with_fault(e0 + 1, 2, FaultKind::KernelPanic));
    let mut exec = Executor::new(MachineConfig::ipsc860(NPROCS), inputs(120, 480))
        .with_fault_plan(Arc::clone(&plan));
    exec.run(&cp).unwrap();
    let err = exec.execute_loop(&cp, "L1").unwrap_err();
    match err {
        LangError::Phase(PhaseError::RankPanic { epoch, failures }) => {
            assert_eq!(epoch, e0 + 1);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].rank, Some(2));
        }
        other => panic!("expected a typed RankPanic, got {other:?}"),
    }
    assert!(plan.exhausted(), "the fault was consumed");
}

#[test]
fn rollback_to_checkpoint_recovers_bit_identically() {
    const EVERY: u64 = 6;
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, EVERY);
    let late = e0 + 3 * (e1 - e0) / 4;
    let plan = || Arc::new(FaultPlan::new().with_fault(late, 2, FaultKind::KernelPanic));
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(120, 480);

    let mut clean = Executor::new(cfg(), ins()).with_checkpoint_every(EVERY);
    let want = drive(&mut clean, &cp).unwrap();

    for engine in 0..3usize {
        let obs = match engine {
            0 => {
                let mut e = Executor::new(cfg(), ins())
                    .with_checkpoint_every(EVERY)
                    .with_fault_plan(plan())
                    .with_recovery_policy(RecoveryPolicy::RollbackToCheckpoint);
                drive(&mut e, &cp).unwrap()
            }
            1 => {
                let mut e = Executor::new_threaded(cfg(), ins())
                    .with_checkpoint_every(EVERY)
                    .with_fault_plan(plan())
                    .with_recovery_policy(RecoveryPolicy::RollbackToCheckpoint);
                drive(&mut e, &cp).unwrap()
            }
            _ => {
                let mut e = Executor::new_pooled_with_workers(cfg(), 3, ins())
                    .with_checkpoint_every(EVERY)
                    .with_fault_plan(plan())
                    .with_recovery_policy(RecoveryPolicy::RollbackToCheckpoint);
                drive(&mut e, &cp).unwrap()
            }
        };
        assert_eq!(obs, want, "engine {engine}");
    }
}

#[test]
fn degrade_to_machine_recovers_bit_identically() {
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    let mid = e0 + (e1 - e0) / 2;
    let plan = || Arc::new(FaultPlan::new().with_fault(mid, 1, FaultKind::KernelPanic));
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(100, 400);

    let mut clean = Executor::new(cfg(), ins());
    let want = drive(&mut clean, &cp).unwrap();

    // After the failure the pooled/threaded engines fall back to inline
    // sequential execution — still bit-identical by the engine-equivalence
    // contract.
    let mut thr = Executor::new_threaded(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(RecoveryPolicy::DegradeToMachine);
    assert_eq!(drive(&mut thr, &cp).unwrap(), want, "threaded degrade");

    let mut pool = Executor::new_pooled_with_workers(cfg(), 3, ins())
        .with_fault_plan(plan())
        .with_recovery_policy(RecoveryPolicy::DegradeToMachine);
    assert_eq!(drive(&mut pool, &cp).unwrap(), want, "pooled degrade");
}

#[test]
fn retry_attempts_are_bounded() {
    // max_attempts = 0 means the first failure is final even under
    // RetryPhase.
    let cp = program();
    let (e0, _) = sweep_epochs(&cp, 0);
    let plan = Arc::new(FaultPlan::new().with_fault(e0 + 1, 0, FaultKind::KernelPanic));
    let mut exec = Executor::new(MachineConfig::ipsc860(NPROCS), inputs(120, 480))
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::RetryPhase {
            max_attempts: 0,
            backoff: Duration::ZERO,
        });
    exec.run(&cp).unwrap();
    let err = exec.execute_loop(&cp, "L1").unwrap_err();
    assert!(matches!(
        err,
        LangError::Phase(PhaseError::RankPanic { .. })
    ));
}

#[test]
fn all_three_fault_kinds_in_one_pooled_run_recover_bit_identically() {
    // The acceptance scenario: one pooled run with an injected panic, a
    // stall (caught by the barrier deadline) and a corruption, all
    // recovered, final state bit-identical to fault-free.
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    assert!(e1 - e0 >= 4, "need at least four sweep epochs");
    let span = e1 - e0;
    let plan = Arc::new(
        FaultPlan::new()
            .with_stall(Duration::from_millis(60))
            .with_fault(e0 + 1, 1, FaultKind::KernelPanic)
            .with_fault(e0 + span / 2, 0, FaultKind::LaneStall)
            .with_fault(e0 + 3 * span / 4, 2, FaultKind::MailboxCorruption),
    );
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(140, 560);

    let mut clean = Executor::new_pooled_with_workers(cfg(), 2, ins());
    let want = drive(&mut clean, &cp).unwrap();

    let mut pool = Executor::new_pooled_with_workers(cfg(), 2, ins())
        .with_barrier_deadline(Duration::from_millis(5))
        .with_fault_plan(Arc::clone(&plan))
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut pool, &cp).unwrap(), want);
    assert!(plan.exhausted(), "every scheduled fault fired");
}

#[test]
fn panic_inside_a_fused_sweep_recovers_bit_identically() {
    let cp = program();
    let (e0, e1) = sweep_epochs(&cp, 0);
    assert_eq!(
        e1 - e0,
        SWEEPS as u64,
        "the fused sweep advances exactly one epoch per sweep"
    );

    // A fault inside a fused sweep fires at the compute entry of the single
    // gather→compute→scatter epoch; nothing replays onto the machine and
    // RetryPhase re-runs the whole sweep from the pre-sweep snapshot.
    let target = e0 + 2;
    let plan = || Arc::new(FaultPlan::new().with_fault(target, 2, FaultKind::KernelPanic));
    let cfg = || MachineConfig::ipsc860(NPROCS);
    let ins = || inputs(120, 480);

    let mut clean = Executor::new(cfg(), ins());
    let want = drive(&mut clean, &cp).unwrap();

    let mut seq = Executor::new(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut seq, &cp).unwrap(), want, "sequential engine");

    let mut thr = Executor::new_threaded(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut thr, &cp).unwrap(), want, "threaded engine");

    let mut pool = Executor::new_pooled_with_workers(cfg(), 3, ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut pool, &cp).unwrap(), want, "pooled engine");

    // The split path pays one epoch per phase, so its sweeps span more
    // epochs — fault coordinates are defined against a fixed fusion setting.
    let mut split = Executor::new(cfg(), ins()).with_phase_fusion(false);
    split.run(&cp).unwrap();
    let s0 = split.machine().epoch();
    for _ in 0..SWEEPS {
        split.execute_loop(&cp, "L1").unwrap();
    }
    assert!(
        split.machine().epoch() - s0 > SWEEPS as u64,
        "the split path advances one epoch per phase"
    );
}

#[test]
fn machine_backend_is_the_degraded_target_already() {
    // DegradeToMachine on the sequential engine: degrade() is a no-op that
    // reports success, and the retry still recovers.
    let cp = program();
    let (e0, _) = sweep_epochs(&cp, 0);
    let plan = Arc::new(FaultPlan::new().with_fault(e0 + 1, 0, FaultKind::KernelPanic));
    let cfg = || MachineConfig::ipsc860(NPROCS);

    let mut clean = Executor::new(cfg(), inputs(80, 320));
    let want = drive(&mut clean, &cp).unwrap();

    let mut seq = Executor::new(cfg(), inputs(80, 320))
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::DegradeToMachine);
    assert_eq!(drive(&mut seq, &cp).unwrap(), want);
}
