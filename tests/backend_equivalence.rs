//! The parallel SPMD engines must be **byte-identical** to the sequential
//! one — array values, ghost buffers, modeled clocks and communication
//! statistics. Determinism is part of the `Backend` API, not best-effort:
//! these tests drive randomized mesh-style pipelines and the full mesh / MD
//! experiments through all three engines — `Machine` (sequential oracle),
//! `ThreadedBackend` (scoped thread per rank) and `PooledBackend`
//! (persistent worker pool) — and compare every observable, including the
//! f64 bit patterns of the clocks, plus stress configurations with more
//! virtual processors than cores, more ranks than pool workers, and more
//! pool workers than cores.

use chaos_repro::dmsim::{Backend, PooledBackend, ThreadedBackend, Topology};
use chaos_repro::geocol::{
    GeoCoL, GeoColBuilder, Partitioner, Partitioning, RcbPartitioner, RsbPartitioner,
};
use chaos_repro::prelude::*;
use chaos_repro::runtime::{gather, scatter_add, scatter_op, Inspector, LocalRef, TTablePolicy};
use proptest::prelude::*;

/// What one pipeline run observes: everything that must match across
/// engines.
#[derive(Debug, PartialEq)]
struct PipelineObservation {
    localized: Vec<Vec<LocalRef>>,
    ghost_counts: Vec<usize>,
    ghost_bits: Vec<Vec<u64>>,
    y_add_bits: Vec<u64>,
    y_max_bits: Vec<u64>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    phases: usize,
    comm_seconds_bits: u64,
    record_labels: Vec<String>,
}

/// Run the full inspector/executor pipeline (localize → gather → rank-local
/// compute → scatter-add → scatter-max) on any engine and snapshot every
/// observable.
fn run_pipeline<B: Backend>(
    backend: &mut B,
    dist: &Distribution,
    data: &[f64],
    pattern: &AccessPattern,
) -> PipelineObservation {
    let n = data.len();
    let x = DistArray::from_global("x", dist.clone(), data);
    let result = Inspector.localize(backend, "L", dist, pattern);
    let ghosts = gather(backend, "L", &result.schedule, &x);

    // Rank-local compute: each rank folds 2*x over its references into its
    // own y shard / contribution buffer (the executor template).
    let mut y = DistArray::from_global("y", dist.clone(), &vec![1.0; n]);
    let mut contributions: Vec<Vec<f64>> = ghosts.clone();
    backend.run_compute(
        y.par_shards_mut().zip(contributions.iter_mut()),
        |ctx, (y_local, contrib): (&mut [f64], &mut Vec<f64>)| {
            let q = ctx.rank();
            contrib.fill(0.0);
            for r in &result.localized[q] {
                match *r {
                    LocalRef::Owned(off) => y_local[off as usize] += 2.0 * x.local(q)[off as usize],
                    LocalRef::Ghost(slot) => {
                        contrib[slot as usize] += 2.0 * ghosts[q][slot as usize]
                    }
                }
            }
            ctx.charge_compute(q, result.localized[q].len() as f64);
        },
    );
    scatter_add(backend, "L", &result.schedule, &mut y, &contributions);

    // A second reduction operator over the same schedule.
    let mut z = DistArray::from_global("z", dist.clone(), &vec![0.5; n]);
    scatter_op(backend, "L", &result.schedule, &mut z, &ghosts, |a, b| {
        *a = f64::max(*a, b)
    });

    let machine = backend.machine();
    let elapsed = machine.elapsed();
    let totals = machine.stats().grand_totals();
    PipelineObservation {
        localized: result.localized,
        ghost_counts: result.ghost_counts,
        ghost_bits: ghosts
            .iter()
            .map(|g| g.iter().map(|v| v.to_bits()).collect())
            .collect(),
        y_add_bits: y.to_global().iter().map(|v| v.to_bits()).collect(),
        y_max_bits: z.to_global().iter().map(|v| v.to_bits()).collect(),
        clock_bits: (0..machine.nprocs())
            .map(|p| {
                (
                    elapsed.compute[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: totals.messages,
        bytes: totals.bytes,
        phases: totals.phases,
        comm_seconds_bits: totals.comm_seconds.to_bits(),
        record_labels: machine
            .stats()
            .records()
            .iter()
            .map(|r| format!("{}:{:?}:{}b", r.label, r.kind, r.stats.bytes))
            .collect(),
    }
}

/// Strategy: a processor count, a map array and a reference pattern seed.
fn workload_strategy() -> impl Strategy<Value = (usize, Vec<u32>, u64, usize, usize)> {
    (2usize..=8).prop_flat_map(|p| {
        (16usize..300).prop_flat_map(move |n| {
            (
                Just(p),
                proptest::collection::vec(0u32..p as u32, n),
                0u64..1000,
                1usize..40,
                0usize..2,
            )
        })
    })
}

fn build_pattern(p: usize, n: usize, seed: u64, refs_per_proc: usize) -> AccessPattern {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut pattern = AccessPattern::new(p);
    for q in 0..p {
        for _ in 0..refs_per_proc {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            pattern.refs[q].push(((state >> 33) as usize % n) as u32);
        }
    }
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: over randomized irregular workloads (both translation-table
    /// layouts), all three engines — sequential, threaded, pooled — agree on
    /// values, ghost buffers, modeled clocks and statistics, bit for bit.
    /// The pool's worker count is derived from the seed so the sweep covers
    /// ranks > workers (striping) and workers > ranks/cores (idle lanes,
    /// timesharing).
    #[test]
    fn all_three_engines_agree_on_random_workloads(
        (p, map, seed, refs_per_proc, distributed_sel) in workload_strategy(),
    ) {
        let n = map.len();
        let dist = if distributed_sel == 1 {
            Distribution::irregular_from_map_with_policy(&map, p, TTablePolicy::Distributed)
        } else {
            Distribution::irregular_from_map(&map, p)
        };
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let pattern = build_pattern(p, n, seed, refs_per_proc);

        let cfg = || MachineConfig::unit(p).with_topology(Topology::FullyConnected);
        let mut seq = Machine::new(cfg());
        let mut thr = ThreadedBackend::from_config(cfg());
        // 1..=12 workers: below, at and above both the rank count (2..=8)
        // and (on small containers) the hardware core count.
        let workers = 1 + (seed as usize % 12);
        let mut pool = PooledBackend::with_workers(Machine::new(cfg()), workers);
        let obs_seq = run_pipeline(&mut seq, &dist, &data, &pattern);
        let obs_thr = run_pipeline(&mut thr, &dist, &data, &pattern);
        let obs_pool = run_pipeline(&mut pool, &dist, &data, &pattern);
        prop_assert_eq!(&obs_seq, &obs_thr);
        prop_assert_eq!(&obs_seq, &obs_pool);
    }
}

/// Stress: more virtual processors (64) than this machine plausibly has
/// cores — the scoped threads timeshare, the pool stripes 64 ranks over 5
/// lanes, and the ledgers must still replay to the exact sequential state.
#[test]
fn parallel_engines_with_more_ranks_than_cores_are_exact() {
    let p = 64;
    let n = 4096;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    assert!(
        p > cores,
        "stress test expects more ranks ({p}) than cores ({cores})"
    );
    let map: Vec<u32> = (0..n).map(|i| ((i * 31 + i / 7) % p) as u32).collect();
    let dist = Distribution::irregular_from_map_with_policy(&map, p, TTablePolicy::Distributed);
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() + 2.0).collect();
    let pattern = build_pattern(p, n, 0xC4A05, 512);

    let cfg = || MachineConfig::unit(p).with_topology(Topology::FullyConnected);
    let mut seq = Machine::new(cfg());
    let mut thr = ThreadedBackend::new(Machine::new(cfg()));
    let mut pool = PooledBackend::with_workers(Machine::new(cfg()), 5);
    let obs_seq = run_pipeline(&mut seq, &dist, &data, &pattern);
    let obs_thr = run_pipeline(&mut thr, &dist, &data, &pattern);
    let obs_pool = run_pipeline(&mut pool, &dist, &data, &pattern);
    assert_eq!(obs_seq, obs_thr);
    assert_eq!(obs_seq, obs_pool);
    assert!(obs_seq.messages > 0, "the stress workload must communicate");
}

/// Stress the opposite imbalance: a pool with far more workers (32) than
/// ranks (4) or plausible cores — the idle lanes run empty stripes through
/// every barrier and must not perturb anything.
#[test]
fn pool_with_more_workers_than_cores_is_exact() {
    let p = 4;
    let n = 512;
    let map: Vec<u32> = (0..n).map(|i| ((i * 13 + 3) % p) as u32).collect();
    let dist = Distribution::irregular_from_map(&map, p);
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos() - 1.0).collect();
    let pattern = build_pattern(p, n, 0xBEEF, 96);

    let cfg = || MachineConfig::unit(p).with_topology(Topology::FullyConnected);
    let mut seq = Machine::new(cfg());
    let mut pool = PooledBackend::with_workers(Machine::new(cfg()), 32);
    let obs_seq = run_pipeline(&mut seq, &dist, &data, &pattern);
    let obs_pool = run_pipeline(&mut pool, &dist, &data, &pattern);
    assert_eq!(obs_seq, obs_pool);
}

/// Everything one coupler-driven partitioning run observes on an engine.
#[derive(Debug, PartialEq)]
struct PartitionObservation {
    owners: Vec<u32>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    comm_seconds_bits: u64,
}

/// Run `SET ... BY PARTITIONING` through the mapper coupler on any engine
/// and snapshot the partitioning plus the machine state.
fn run_partition<B: Backend>(
    backend: &mut B,
    partitioner: &dyn Partitioner,
    geocol: &GeoCoL,
) -> PartitionObservation {
    let outcome = chaos_repro::runtime::MapperCoupler.partition(backend, partitioner, geocol);
    let machine = backend.machine();
    let elapsed = machine.elapsed();
    let totals = machine.stats().grand_totals();
    PartitionObservation {
        owners: outcome.partitioning.owners().to_vec(),
        clock_bits: (0..machine.nprocs())
            .map(|p| {
                (
                    elapsed.compute[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: totals.messages,
        bytes: totals.bytes,
        comm_seconds_bits: totals.comm_seconds.to_bits(),
    }
}

/// A random GeoCoL with geometry, loads and (possibly disconnected)
/// connectivity, driven by one LCG seed.
fn random_geocol(n: usize, seed: u64, components: usize) -> GeoCoL {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let xs: Vec<f64> = (0..n).map(|_| next() * 50.0).collect();
    let ys: Vec<f64> = (0..n).map(|_| next() * 20.0).collect();
    let ws: Vec<f64> = (0..n).map(|_| 0.25 + next()).collect();
    // A chain per component (keeps every component connected internally,
    // never across), plus random intra-component chords.
    let comp = |v: usize| v * components / n;
    let mut e1 = Vec::new();
    let mut e2 = Vec::new();
    for v in 0..n.saturating_sub(1) {
        if comp(v) == comp(v + 1) {
            e1.push(v as u32);
            e2.push((v + 1) as u32);
        }
    }
    for _ in 0..2 * n {
        let a = (next() * n as f64) as usize % n;
        let b = (next() * n as f64) as usize % n;
        if a != b && comp(a) == comp(b) {
            e1.push(a as u32);
            e2.push(b as u32);
        }
    }
    GeoColBuilder::new(n)
        .geometry(vec![xs, ys])
        .load(ws)
        .link(e1, e2)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: the rank-parallel partitioners (RSB's power-iteration
    /// matvecs and reductions, RCB's extent/histogram scans) agree across
    /// all three engines — partitionings, modeled clocks and statistics,
    /// bit for bit — and match the pure `partition()` serial oracle, over
    /// random graphs including disconnected ones, with pool worker counts
    /// swept below, at and above the rank count.
    #[test]
    fn partitioners_agree_across_engines_and_match_the_serial_oracle(
        p in 2usize..=8,
        n in 24usize..150,
        seed in 0u64..1000,
        components in 1usize..4,
        which in 0usize..2,
    ) {
        let geocol = random_geocol(n, seed, components);
        let rsb = RsbPartitioner { power_iterations: 40, ..Default::default() };
        let partitioner: &dyn Partitioner = if which == 0 { &rsb } else { &RcbPartitioner };
        let oracle: Partitioning = partitioner.partition(&geocol, p);

        let cfg = || MachineConfig::unit(p).with_topology(Topology::FullyConnected);
        let mut seq = Machine::new(cfg());
        let mut thr = ThreadedBackend::from_config(cfg());
        let workers = 1 + (seed as usize % 12); // ranks>workers and workers>ranks/cores
        let mut pool = PooledBackend::with_workers(Machine::new(cfg()), workers);

        let obs_seq = run_partition(&mut seq, partitioner, &geocol);
        let obs_thr = run_partition(&mut thr, partitioner, &geocol);
        let obs_pool = run_partition(&mut pool, partitioner, &geocol);
        prop_assert_eq!(&obs_seq.owners, oracle.owners(), "engine vs pure partition()");
        prop_assert_eq!(&obs_seq, &obs_thr);
        prop_assert_eq!(&obs_seq, &obs_pool);
    }
}

/// The proptest above keeps `n` small for runtime, which means every
/// `block_scan` fits one `SCAN_BLOCK` and RCB stays on its sort path. Pin
/// one deterministic *large* case — above `SORT_CUTOFF`, misaligned with
/// the block size — so RCB's rank-parallel histogram select and the
/// multi-block partial compaction run on all three real engines in the
/// test suite, not only in `perf_check`.
#[test]
fn large_active_sets_agree_across_engines_and_match_the_serial_oracle() {
    use chaos_repro::geocol::{SCAN_BLOCK, SORT_CUTOFF};
    let n = 3 * SORT_CUTOFF + SCAN_BLOCK / 2 + 13;
    let geocol = random_geocol(n, 0xB16, 1);
    let rsb = RsbPartitioner {
        power_iterations: 8,
        ..Default::default()
    };
    let partitioners: [&dyn Partitioner; 2] = [&RcbPartitioner, &rsb];
    for partitioner in partitioners {
        let oracle = partitioner.partition(&geocol, 4);
        let cfg = || MachineConfig::unit(4).with_topology(Topology::FullyConnected);
        let mut seq = Machine::new(cfg());
        let mut thr = ThreadedBackend::from_config(cfg());
        let mut pool = PooledBackend::with_workers(Machine::new(cfg()), 3);
        let obs_seq = run_partition(&mut seq, partitioner, &geocol);
        let obs_thr = run_partition(&mut thr, partitioner, &geocol);
        let obs_pool = run_partition(&mut pool, partitioner, &geocol);
        assert_eq!(
            obs_seq.owners,
            oracle.owners(),
            "{} large-set engine vs pure partition()",
            partitioner.name()
        );
        assert_eq!(obs_seq, obs_thr, "{}", partitioner.name());
        assert_eq!(obs_seq, obs_pool, "{}", partitioner.name());
    }
}

/// The disconnected-graph edge case, pinned (the proptest also sweeps it):
/// RSB on a graph with no edges across components must stay exact on every
/// engine and cut nothing.
#[test]
fn disconnected_graph_partitioning_is_engine_independent() {
    use chaos_repro::geocol::PartitionQuality;
    let geocol = random_geocol(96, 0xD15C0, 3);
    let rsb = RsbPartitioner::default();
    let oracle = rsb.partition(&geocol, 4);
    let cfg = || MachineConfig::unit(4).with_topology(Topology::FullyConnected);
    let mut seq = Machine::new(cfg());
    let mut thr = ThreadedBackend::from_config(cfg());
    let mut pool = PooledBackend::with_workers(Machine::new(cfg()), 2);
    let obs_seq = run_partition(&mut seq, &rsb, &geocol);
    let obs_thr = run_partition(&mut thr, &rsb, &geocol);
    let obs_pool = run_partition(&mut pool, &rsb, &geocol);
    assert_eq!(obs_seq.owners, oracle.owners());
    assert_eq!(obs_seq, obs_thr);
    assert_eq!(obs_seq, obs_pool);
    let q = PartitionQuality::evaluate(&geocol, &oracle);
    assert!(
        q.load_imbalance <= 1.5,
        "imbalance {} on the disconnected graph",
        q.load_imbalance
    );
}

/// The full mesh experiment end-to-end (partitioner, remap, inspector,
/// repeated executor sweeps with schedule reuse) agrees across all three
/// engines on a 16-rank machine.
#[test]
fn mesh_workload_experiment_is_engine_independent() {
    use chaos_bench::experiment::{ExperimentConfig, Method};
    use chaos_bench::handcoded::{run_handcoded, run_handcoded_pooled, run_handcoded_threaded};
    use chaos_bench::workload::mesh_workload;
    use chaos_workloads::MeshConfig;

    let w = mesh_workload(MeshConfig::tiny(1500));
    let cfg = ExperimentConfig::paper(16, Method::Rcb).with_iterations(4);
    let seq = run_handcoded(&w, &cfg);
    let thr = run_handcoded_threaded(&w, &cfg);
    let pooled = run_handcoded_pooled(&w, &cfg);
    for other in [&thr, &pooled] {
        assert_eq!(seq.total.to_bits(), other.total.to_bits());
        assert_eq!(seq.executor.to_bits(), other.executor.to_bits());
        assert_eq!(seq.inspector.to_bits(), other.inspector.to_bits());
        assert_eq!(seq.messages, other.messages);
        assert_eq!(seq.bytes, other.bytes);
    }
}

// ---------------------------------------------------------------------------
// Randomized fault schedules through the language executor: recovery is
// bit-identical to a fault-free run on every engine.
// ---------------------------------------------------------------------------

mod randomized_faults {
    use super::*;
    use chaos_repro::dmsim::{FaultPlan, RecoveryPolicy};
    use chaos_repro::lang::CompiledProgram;
    use std::sync::Arc;
    use std::time::Duration;

    const SRC: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, end_pt1, end_pt2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;
    const NP: usize = 4;
    const SWEEPS: usize = 5;

    fn program() -> CompiledProgram {
        lower_program(parse_program(SRC).unwrap()).unwrap()
    }

    fn inputs() -> ProgramInputs {
        let (nnode, nedge) = (96usize, 384usize);
        let mut state = 0xBEEF_CAFEu64;
        let mut next = |m: usize| -> u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize % m) as u32 + 1
        };
        let mut e1 = Vec::with_capacity(nedge);
        let mut e2 = Vec::with_capacity(nedge);
        for _ in 0..nedge {
            let a = next(nnode);
            let mut b = next(nnode);
            if b == a {
                b = a % nnode as u32 + 1;
            }
            e1.push(a);
            e2.push(b);
        }
        ProgramInputs::new()
            .scalar("nnode", nnode)
            .scalar("nedge", nedge)
            .real(
                "x",
                (0..nnode).map(|i| (i as f64 * 0.7).cos() + 2.0).collect(),
            )
            .real("y", vec![0.0; nnode])
            .int("end_pt1", e1)
            .int("end_pt2", e2)
    }

    #[derive(Debug, PartialEq)]
    struct Obs {
        y: Vec<u64>,
        clocks: Vec<u64>,
        messages: usize,
        bytes: usize,
        phases: usize,
        comm: u64,
        report: chaos_repro::lang::ExecReport,
    }

    fn drive<B: Backend>(exec: &mut Executor<B>, cp: &CompiledProgram) -> Obs {
        exec.run(cp).unwrap();
        for _ in 0..SWEEPS {
            exec.execute_loop(cp, "L1").unwrap();
        }
        let e = exec.machine().elapsed();
        let s = exec.machine().stats().grand_totals();
        Obs {
            y: exec
                .real_global("y")
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
            clocks: e.per_proc.iter().map(|v| v.to_bits()).collect(),
            messages: s.messages,
            bytes: s.bytes,
            phases: s.phases,
            comm: s.comm_seconds.to_bits(),
            report: exec.report().clone(),
        }
    }

    /// Epochs spanned by the executor sweeps (past the directive preamble),
    /// so randomized faults land where there is work to fail.
    fn sweep_epochs(cp: &CompiledProgram) -> std::ops::Range<u64> {
        let mut probe = Executor::new(MachineConfig::ipsc860(NP), inputs());
        probe.run(cp).unwrap();
        let start = probe.machine().epoch();
        for _ in 0..SWEEPS {
            probe.execute_loop(cp, "L1").unwrap();
        }
        start + 1..probe.machine().epoch() + 1
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any seeded schedule of panics, stalls and corruptions is
        /// recovered bit-identically — values, clock bits, statistics and
        /// the execution report — on all three engines.
        #[test]
        fn random_fault_schedules_recover_bit_identically(
            seed in 0u64..u64::MAX,
            count in 1usize..4,
        ) {
            let cp = program();
            let epochs = sweep_epochs(&cp);
            let plan = || {
                Arc::new(
                    FaultPlan::randomized(seed, count, epochs.clone(), NP)
                        .with_stall(Duration::from_millis(1)),
                )
            };
            // Worst case every fault lands on the same (epoch, rank) and
            // must be burned through one retry at a time.
            let policy = || RecoveryPolicy::RetryPhase {
                max_attempts: count as u32 + 1,
                backoff: Duration::ZERO,
            };

            let mut clean = Executor::new(MachineConfig::ipsc860(NP), inputs());
            let want = drive(&mut clean, &cp);

            let mut seq = Executor::new(MachineConfig::ipsc860(NP), inputs())
                .with_fault_plan(plan())
                .with_recovery_policy(policy());
            prop_assert_eq!(&drive(&mut seq, &cp), &want, "sequential engine");

            let mut thr = Executor::new_threaded(MachineConfig::ipsc860(NP), inputs())
                .with_fault_plan(plan())
                .with_recovery_policy(policy());
            prop_assert_eq!(&drive(&mut thr, &cp), &want, "threaded engine");

            let mut pool =
                Executor::new_pooled_with_workers(MachineConfig::ipsc860(NP), 3, inputs())
                    .with_fault_plan(plan())
                    .with_recovery_policy(policy());
            prop_assert_eq!(&drive(&mut pool, &cp), &want, "pooled engine");
        }
    }
}
