//! The compiled-kernel VM must be **byte-identical** to the tree-walking
//! interpreter — array values, modeled clocks (down to the f64 bit
//! patterns), communication statistics and execution counters — on both the
//! sequential and the rank-parallel engine. These tests drive randomized
//! FORALL programs and the mesh / MD experiment templates through all
//! (kernel mode × backend) combinations and compare every observable.

use chaos_bench::compilergen::{program_inputs, program_text};
use chaos_bench::experiment::Method;
use chaos_bench::workload::{md_workload, mesh_workload};
use chaos_repro::dmsim::{Backend, MachineConfig};
use chaos_repro::lang::{
    lower_program, parse_program, CompiledProgram, Executor, KernelMode, ProgramInputs,
};
use chaos_repro::workloads::{MdConfig, MeshConfig};
use proptest::prelude::*;

/// Everything one program run observes that must match across kernel modes
/// and backends.
#[derive(Debug, PartialEq)]
struct Observation {
    real_bits: Vec<(String, Vec<u64>)>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    phases: usize,
    comm_seconds_bits: u64,
    loop_sweeps: usize,
    inspector_runs: usize,
    reuse_hits: usize,
    iteration_partitions: usize,
    schedule_merges: usize,
}

fn observe<B: Backend>(exec: &Executor<B>, arrays: &[&str]) -> Observation {
    let machine = exec.machine();
    let elapsed = machine.elapsed();
    let totals = machine.stats().grand_totals();
    let report = exec.report();
    Observation {
        real_bits: arrays
            .iter()
            .filter_map(|a| {
                exec.real_global(a)
                    .map(|v| (a.to_string(), v.iter().map(|x| x.to_bits()).collect()))
            })
            .collect(),
        clock_bits: (0..machine.nprocs())
            .map(|p| {
                (
                    elapsed.compute[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: totals.messages,
        bytes: totals.bytes,
        phases: totals.phases,
        comm_seconds_bits: totals.comm_seconds.to_bits(),
        loop_sweeps: report.loop_sweeps,
        inspector_runs: report.inspector_runs,
        reuse_hits: report.reuse_hits,
        iteration_partitions: report.iteration_partitions,
        schedule_merges: report.schedule_merges,
    }
}

/// Run a program plus `extra_sweeps` steady-state re-executions of its last
/// loop on the given executor.
fn drive<B: Backend>(
    exec: &mut Executor<B>,
    cp: &CompiledProgram,
    label: &str,
    extra_sweeps: usize,
) {
    exec.run(cp).expect("program runs");
    for _ in 0..extra_sweeps {
        exec.execute_loop(cp, label).expect("sweep runs");
    }
}

/// Assert that compiled and interpreted modes agree on both engines, and
/// return the compiled-mode observation.
fn assert_all_equivalent(
    src: &str,
    inputs: &ProgramInputs,
    nprocs: usize,
    arrays: &[&str],
    extra_sweeps: usize,
) -> Observation {
    let cp = lower_program(parse_program(src).expect("parse")).expect("lower");
    let label = cp
        .program
        .loop_labels()
        .last()
        .expect("program has a loop")
        .to_string();

    let mut vm_seq = Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone());
    drive(&mut vm_seq, &cp, &label, extra_sweeps);
    let obs_vm = observe(&vm_seq, arrays);

    let mut tree_seq = Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone())
        .with_kernel_mode(KernelMode::Interpreted);
    drive(&mut tree_seq, &cp, &label, extra_sweeps);
    assert_eq!(
        obs_vm,
        observe(&tree_seq, arrays),
        "VM vs tree-walker diverged (sequential engine)"
    );

    let mut vm_thr = Executor::new_threaded(MachineConfig::ipsc860(nprocs), inputs.clone());
    drive(&mut vm_thr, &cp, &label, extra_sweeps);
    assert_eq!(
        obs_vm,
        observe(&vm_thr, arrays),
        "VM diverged across engines"
    );

    let mut tree_thr = Executor::new_threaded(MachineConfig::ipsc860(nprocs), inputs.clone())
        .with_kernel_mode(KernelMode::Interpreted);
    drive(&mut tree_thr, &cp, &label, extra_sweeps);
    assert_eq!(
        obs_vm,
        observe(&tree_thr, arrays),
        "tree-walker diverged across engines"
    );

    // Kernel caching mirrors schedule reuse: one compile per inspector run,
    // a cache hit for every other sweep.
    let report = vm_seq.report();
    assert_eq!(report.kernels_compiled, report.inspector_runs);
    assert_eq!(
        report.kernel_reuse_hits,
        report.loop_sweeps - report.kernels_compiled
    );
    obs_vm
}

/// Assert that the fused sweep path (the default) and the split
/// gather → compute → scatter path observe identically — values, clock
/// bits, statistics — on all three engines, and return the fused
/// sequential observation. Only epoch counts may differ: the fused path
/// advances one epoch per sweep, the split path one per phase.
fn assert_fusion_equivalent(
    src: &str,
    inputs: &ProgramInputs,
    nprocs: usize,
    arrays: &[&str],
    extra_sweeps: usize,
) -> Observation {
    let cp = lower_program(parse_program(src).expect("parse")).expect("lower");
    let label = cp
        .program
        .loop_labels()
        .last()
        .expect("program has a loop")
        .to_string();

    let mut fused_seq = Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone());
    drive(&mut fused_seq, &cp, &label, extra_sweeps);
    let obs = observe(&fused_seq, arrays);

    let mut split_seq =
        Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone()).with_phase_fusion(false);
    drive(&mut split_seq, &cp, &label, extra_sweeps);
    assert_eq!(
        obs,
        observe(&split_seq, arrays),
        "fused vs split sweep diverged (sequential engine)"
    );
    assert!(
        fused_seq.machine().epoch() <= split_seq.machine().epoch(),
        "the fused sweep never advances more epochs than the split one"
    );

    let mut split_tree = Executor::new(MachineConfig::ipsc860(nprocs), inputs.clone())
        .with_kernel_mode(KernelMode::Interpreted)
        .with_phase_fusion(false);
    drive(&mut split_tree, &cp, &label, extra_sweeps);
    assert_eq!(
        obs,
        observe(&split_tree, arrays),
        "split tree-walker diverged from the fused VM (sequential engine)"
    );

    let mut split_thr = Executor::new_threaded(MachineConfig::ipsc860(nprocs), inputs.clone())
        .with_phase_fusion(false);
    drive(&mut split_thr, &cp, &label, extra_sweeps);
    assert_eq!(
        obs,
        observe(&split_thr, arrays),
        "split sweep diverged on the threaded engine"
    );

    let mut fused_pool = Executor::new_pooled(MachineConfig::ipsc860(nprocs), inputs.clone());
    drive(&mut fused_pool, &cp, &label, extra_sweeps);
    assert_eq!(
        obs,
        observe(&fused_pool, arrays),
        "fused sweep diverged on the pooled engine"
    );

    let mut split_pool = Executor::new_pooled(MachineConfig::ipsc860(nprocs), inputs.clone())
        .with_phase_fusion(false);
    drive(&mut split_pool, &cp, &label, extra_sweeps);
    assert_eq!(
        obs,
        observe(&split_pool, arrays),
        "split sweep diverged on the pooled engine"
    );

    obs
}

// ---------- randomized programs ----------

/// Deterministic LCG over the case seed.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

/// Generate a random (program text, body uses indirection) pair. Arrays
/// x, y live on `rega`, z on `regb` (same size, same BLOCK distribution —
/// so multi-group loops exercise schedule merging too); ia, ib are the
/// indirection arrays. The analyzer's restrictions are respected by
/// construction: only rega arrays are referenced through indirection.
fn gen_body(rng: &mut Rng) -> String {
    let nstmts = 1 + rng.below(3);
    let mut body = String::new();
    for _ in 0..nstmts {
        let target = rng.pick(&["y(ia(i))", "y(ib(i))", "y(i)", "z(i)"]);
        let expr = gen_expr(rng, 2);
        match rng.below(4) {
            0 => body.push_str(&format!("          {target} = {expr}\n")),
            1 => body.push_str(&format!("          REDUCE(MAX, {target}, {expr})\n")),
            2 => body.push_str(&format!("          REDUCE(MIN, {target}, {expr})\n")),
            _ => body.push_str(&format!("          REDUCE(ADD, {target}, {expr})\n")),
        }
    }
    body
}

fn gen_expr(rng: &mut Rng, depth: usize) -> String {
    let term = |rng: &mut Rng| {
        rng.pick(&[
            "x(ia(i))", "x(ib(i))", "y(ia(i))", "x(i)", "z(i)", "0.5", "1.25", "3.0",
        ])
        .to_string()
    };
    if depth == 0 {
        return term(rng);
    }
    match rng.below(6) {
        0 | 1 => term(rng),
        2 => {
            let op = rng.pick(&["+", "-", "*", "/"]);
            format!(
                "({} {op} {})",
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1)
            )
        }
        3 => format!("ABS({})", gen_expr(rng, depth - 1)),
        4 => format!("SQRT(ABS({}))", gen_expr(rng, depth - 1)),
        _ => format!(
            "EFLUX1({}, {})",
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1)
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized loop bodies: VM == tree-walker on both engines, down to
    /// clock bits and CommStats, through initial run + reused sweeps.
    #[test]
    fn randomized_programs_agree_across_modes_and_engines(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(99991));
        let nnode = 16 + rng.below(24);
        let nedge = 8 + rng.below(nnode - 8); // nedge <= nnode so z(i)/x(i) stay in range
        // ipsc860 is a hypercube: power-of-two processor counts only.
        let nprocs = 1 << (1 + rng.below(2));
        let body = gen_body(&mut rng);
        let src = format!(
            r#"
        REAL*8 x(nnode), y(nnode), z(nnode)
        INTEGER ia(nedge), ib(nedge)
        DECOMPOSITION rega(nnode), regb(nnode), regc(nedge)
        DISTRIBUTE rega(BLOCK)
        DISTRIBUTE regb(BLOCK)
        DISTRIBUTE regc(BLOCK)
        ALIGN x, y WITH rega
        ALIGN z WITH regb
        ALIGN ia, ib WITH regc
        CALL READ_DATA(x, y, z, ia, ib)
        FORALL i = 1, nedge
{body}        END FORALL
    "#
        );
        let ia: Vec<u32> = (0..nedge).map(|_| rng.below(nnode) as u32 + 1).collect();
        let ib: Vec<u32> = (0..nedge).map(|_| rng.below(nnode) as u32 + 1).collect();
        let inputs = ProgramInputs::new()
            .scalar("nnode", nnode)
            .scalar("nedge", nedge)
            .real("x", (0..nnode).map(|i| (i as f64 * 0.61).sin() + 1.5).collect())
            .real("y", (0..nnode).map(|i| (i as f64 * 0.23).cos()).collect())
            .real("z", (0..nnode).map(|i| i as f64 * 0.05 - 0.4).collect())
            .int("ia", ia)
            .int("ib", ib);
        assert_all_equivalent(&src, &inputs, nprocs, &["x", "y", "z"], 2);
    }

    /// Randomized loop bodies: the fused sweep (single gather→compute→scatter
    /// epoch) matches the split-phase path on the sequential, threaded and
    /// pooled engines, down to clock bits and CommStats.
    #[test]
    fn randomized_programs_agree_fused_vs_split(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(777));
        let nnode = 16 + rng.below(24);
        let nedge = 8 + rng.below(nnode - 8);
        let nprocs = 1 << (1 + rng.below(2));
        let body = gen_body(&mut rng);
        let src = format!(
            r#"
        REAL*8 x(nnode), y(nnode), z(nnode)
        INTEGER ia(nedge), ib(nedge)
        DECOMPOSITION rega(nnode), regb(nnode), regc(nedge)
        DISTRIBUTE rega(BLOCK)
        DISTRIBUTE regb(BLOCK)
        DISTRIBUTE regc(BLOCK)
        ALIGN x, y WITH rega
        ALIGN z WITH regb
        ALIGN ia, ib WITH regc
        CALL READ_DATA(x, y, z, ia, ib)
        FORALL i = 1, nedge
{body}        END FORALL
    "#
        );
        let ia: Vec<u32> = (0..nedge).map(|_| rng.below(nnode) as u32 + 1).collect();
        let ib: Vec<u32> = (0..nedge).map(|_| rng.below(nnode) as u32 + 1).collect();
        let inputs = ProgramInputs::new()
            .scalar("nnode", nnode)
            .scalar("nedge", nedge)
            .real("x", (0..nnode).map(|i| (i as f64 * 0.43).sin() + 1.5).collect())
            .real("y", (0..nnode).map(|i| (i as f64 * 0.31).cos()).collect())
            .real("z", (0..nnode).map(|i| i as f64 * 0.07 - 0.9).collect())
            .int("ia", ia)
            .int("ib", ib);
        assert_fusion_equivalent(&src, &inputs, nprocs, &["x", "y", "z"], 2);
    }
}

// ---------- the paper's experiment templates ----------

/// The mesh experiment program (Figure 4/5 template with RSB implicit
/// mapping): redistribution forces an inspector + kernel recompile, and the
/// irregular distribution gives the schedules real off-processor traffic.
#[test]
fn mesh_example_program_agrees_across_modes_and_engines() {
    let w = mesh_workload(MeshConfig::tiny(400));
    let src = program_text(Method::Rsb);
    let inputs = program_inputs(&w);
    let obs = assert_all_equivalent(&src, &inputs, 8, &["x", "y"], 3);
    assert!(obs.messages > 0, "irregular mesh loop communicates");
    assert_eq!(obs.loop_sweeps, 4);
    assert_eq!(obs.reuse_hits, 3, "steady-state sweeps reuse the schedule");
}

/// The MD experiment program (same pair-reduction template, BLOCK mapping).
#[test]
fn md_example_program_agrees_across_modes_and_engines() {
    let w = md_workload(MdConfig::tiny(64));
    let src = program_text(Method::Block);
    let inputs = program_inputs(&w);
    let obs = assert_all_equivalent(&src, &inputs, 4, &["x", "y"], 3);
    assert!(obs.messages > 0, "pair loop communicates");
    assert_eq!(obs.loop_sweeps, 4);
}

/// The mesh experiment through the fused sweep: one epoch per sweep instead
/// of one per phase, with every observable bit-identical to the split path
/// on all three engines.
#[test]
fn mesh_example_program_agrees_fused_vs_split() {
    let w = mesh_workload(MeshConfig::tiny(400));
    let src = program_text(Method::Rsb);
    let inputs = program_inputs(&w);
    let obs = assert_fusion_equivalent(&src, &inputs, 8, &["x", "y"], 3);
    assert!(obs.messages > 0, "irregular mesh loop communicates");

    // The mesh loop gathers and scatters, so fusing must save epochs.
    let cp = lower_program(parse_program(&src).expect("parse")).expect("lower");
    let label = cp.program.loop_labels().last().unwrap().to_string();
    let mut fused = Executor::new(MachineConfig::ipsc860(8), inputs.clone());
    drive(&mut fused, &cp, &label, 3);
    let mut split =
        Executor::new(MachineConfig::ipsc860(8), inputs.clone()).with_phase_fusion(false);
    drive(&mut split, &cp, &label, 3);
    assert!(
        fused.machine().epoch() < split.machine().epoch(),
        "a communicating loop fuses several phases into one epoch"
    );
}
