//! The metrics registry is an **observer**: enabling metering must never
//! change what an engine computes. These tests drive randomized pipelines
//! through all three engines — `Machine` (sequential oracle),
//! `ThreadedBackend`, `PooledBackend` — twice each, once with a
//! `MetricsRegistry` installed and once without, and assert the runs are
//! bit-identical in every observable (array values, ghost buffers, the f64
//! bit patterns of the modeled clocks, and the communication statistics).
//! The metered runs must additionally have actually metered: epochs and
//! kernel runs counted, span histograms populated on the right engine.

use chaos_repro::dmsim::{
    Backend, Counter, EngineKind, MetricsRegistry, PooledBackend, ThreadedBackend, Topology,
};
use chaos_repro::prelude::*;
use chaos_repro::runtime::{gather, scatter_add, Inspector, LocalRef};
use proptest::prelude::*;
use std::sync::Arc;

/// Everything one pipeline run observes: all of it must be unchanged by
/// installing a metrics registry.
#[derive(Debug, PartialEq)]
struct Obs {
    ghost_bits: Vec<Vec<u64>>,
    y_bits: Vec<u64>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    phases: usize,
    comm_seconds_bits: u64,
    record_labels: Vec<String>,
    epoch: u64,
}

/// Localize → gather → rank-parallel compute → scatter-add on any engine.
fn run_pipeline<B: Backend>(
    backend: &mut B,
    dist: &Distribution,
    data: &[f64],
    pattern: &AccessPattern,
) -> Obs {
    let n = data.len();
    let x = DistArray::from_global("x", dist.clone(), data);
    let result = Inspector.localize(backend, "L", dist, pattern);
    let ghosts = gather(backend, "L", &result.schedule, &x);

    let mut y = DistArray::from_global("y", dist.clone(), &vec![1.0; n]);
    let mut contributions: Vec<Vec<f64>> = ghosts.clone();
    backend.run_compute(
        y.par_shards_mut().zip(contributions.iter_mut()),
        |ctx, (y_local, contrib): (&mut [f64], &mut Vec<f64>)| {
            let q = ctx.rank();
            contrib.fill(0.0);
            for r in &result.localized[q] {
                match *r {
                    LocalRef::Owned(off) => y_local[off as usize] += 2.0 * x.local(q)[off as usize],
                    LocalRef::Ghost(slot) => {
                        contrib[slot as usize] += 2.0 * ghosts[q][slot as usize]
                    }
                }
            }
            ctx.charge_compute(q, result.localized[q].len() as f64);
        },
    );
    scatter_add(backend, "L", &result.schedule, &mut y, &contributions);

    let machine = backend.machine();
    let elapsed = machine.elapsed();
    let totals = machine.stats().grand_totals();
    Obs {
        ghost_bits: ghosts
            .iter()
            .map(|g| g.iter().map(|v| v.to_bits()).collect())
            .collect(),
        y_bits: y.to_global().iter().map(|v| v.to_bits()).collect(),
        clock_bits: (0..machine.nprocs())
            .map(|p| {
                (
                    elapsed.compute[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: totals.messages,
        bytes: totals.bytes,
        phases: totals.phases,
        comm_seconds_bits: totals.comm_seconds.to_bits(),
        record_labels: machine
            .stats()
            .records()
            .iter()
            .map(|r| format!("{}:{:?}:{}b", r.label, r.kind, r.stats.bytes))
            .collect(),
        epoch: machine.epoch(),
    }
}

fn build_pattern(p: usize, n: usize, seed: u64, refs_per_proc: usize) -> AccessPattern {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(29);
    let mut pattern = AccessPattern::new(p);
    for q in 0..p {
        for _ in 0..refs_per_proc {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            pattern.refs[q].push(((state >> 33) as usize % n) as u32);
        }
    }
    pattern
}

/// The metered run must have actually metered: epochs and kernel runs were
/// counted, pack volume was observed, and the span histograms carry samples
/// attributed to the expected engine.
fn assert_metered(registry: &MetricsRegistry, engine: EngineKind, name: &str) {
    let snap = registry.snapshot();
    assert!(snap.counter(Counter::Epochs) > 0, "{name}: no epochs");
    assert!(
        snap.counter(Counter::KernelRuns) > 0,
        "{name}: no kernel runs"
    );
    assert!(
        snap.counter(Counter::PackMessages) > 0,
        "{name}: no pack volume"
    );
    assert!(
        snap.spans
            .iter()
            .any(|cell| cell.engine == engine && cell.hist.count > 0),
        "{name}: no spans on engine {engine:?}"
    );
    assert_eq!(snap.lane_events_lost, 0, "{name}: lane events lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: on every engine, a run with a `MetricsRegistry` installed
    /// is bit-identical to the same run without one — values, ghost
    /// buffers, modeled clock bits, `CommStats` and the per-phase record
    /// stream.
    #[test]
    fn metered_runs_are_bit_identical_to_bare_on_all_engines(
        p in 2usize..=6,
        n in 16usize..200,
        seed in 0u64..1000,
        refs_per_proc in 1usize..32,
    ) {
        let map: Vec<u32> = (0..n).map(|i| ((i as u64 * 31 + seed) % p as u64) as u32).collect();
        let dist = Distribution::irregular_from_map(&map, p);
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 0.41 - 3.0).collect();
        let pattern = build_pattern(p, n, seed, refs_per_proc);
        let cfg = || MachineConfig::unit(p).with_topology(Topology::FullyConnected);
        let workers = 1 + (seed as usize % 5);

        // Sequential oracle.
        let mut plain = Machine::new(cfg());
        let want = run_pipeline(&mut plain, &dist, &data, &pattern);
        let mut metered = Machine::new(cfg());
        let registry = Arc::new(MetricsRegistry::new(0));
        metered.install_metrics(Some(Arc::clone(&registry)));
        prop_assert_eq!(&run_pipeline(&mut metered, &dist, &data, &pattern), &want);
        assert_metered(&registry, EngineKind::Machine, "sequential");

        // Scoped-thread engine (one lane per rank).
        let mut thr = ThreadedBackend::from_config(cfg());
        prop_assert_eq!(&run_pipeline(&mut thr, &dist, &data, &pattern), &want);
        let mut thr_metered = ThreadedBackend::from_config(cfg());
        let registry = Arc::new(MetricsRegistry::new(p));
        thr_metered.machine_mut().install_metrics(Some(Arc::clone(&registry)));
        prop_assert_eq!(&run_pipeline(&mut thr_metered, &dist, &data, &pattern), &want);
        assert_metered(&registry, EngineKind::Threaded, "threaded");

        // Worker pool (ranks striped over `workers` lanes).
        let mut pool = PooledBackend::with_workers(Machine::new(cfg()), workers);
        prop_assert_eq!(&run_pipeline(&mut pool, &dist, &data, &pattern), &want);
        let mut pool_metered = PooledBackend::with_workers(Machine::new(cfg()), workers);
        let registry = Arc::new(MetricsRegistry::new(workers));
        pool_metered.machine_mut().install_metrics(Some(Arc::clone(&registry)));
        prop_assert_eq!(&run_pipeline(&mut pool_metered, &dist, &data, &pattern), &want);
        assert_metered(&registry, EngineKind::Pooled, "pooled");
    }
}

/// The lang executor's `with_metrics` builder: a metered pooled executor
/// run — fused sweeps, checkpoint refreshes and all — is bit-identical to
/// the bare one, and the snapshot carries the executor's whole story:
/// epochs, kernel and combine runs, checkpoint refreshes, pack volume and
/// an audit row per sampled phase kind.
#[test]
fn metered_lang_executor_matches_bare_and_snapshots() {
    const SRC: &str = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER end_pt1(nedge), end_pt2(nedge)
        DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
        DISTRIBUTE reg(BLOCK)
        DISTRIBUTE reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN end_pt1, end_pt2 WITH reg2
        CALL READ_DATA(x, y, end_pt1, end_pt2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(end_pt1(i)), EFLUX1(x(end_pt1(i)), x(end_pt2(i))))
          REDUCE(ADD, y(end_pt2(i)), EFLUX2(x(end_pt1(i)), x(end_pt2(i))))
        END FORALL
    "#;
    let (nnode, nedge, nprocs, workers) = (96usize, 384usize, 4usize, 3usize);
    let inputs = ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", nedge)
        .real(
            "x",
            (0..nnode).map(|i| (i as f64 * 0.7).cos() + 2.0).collect(),
        )
        .real("y", vec![0.0; nnode])
        .int(
            "end_pt1",
            (0..nedge).map(|i| (i % nnode) as u32 + 1).collect(),
        )
        .int(
            "end_pt2",
            (0..nedge)
                .map(|i| ((i * 7 + 3) % nnode) as u32 + 1)
                .collect(),
        );
    let cp = lower_program(parse_program(SRC).expect("parse")).expect("lower");

    let drive = |registry: Option<Arc<MetricsRegistry>>| {
        let mut exec = Executor::new_pooled_with_workers(
            MachineConfig::ipsc860(nprocs),
            workers,
            inputs.clone(),
        )
        .with_checkpoint_every(4);
        if let Some(r) = registry {
            exec = exec.with_metrics(r);
        }
        exec.run(&cp).expect("program runs");
        for _ in 0..6 {
            exec.execute_loop(&cp, "L1").expect("sweep");
        }
        let e = exec.machine().elapsed();
        let s = exec.machine().stats().grand_totals();
        (
            exec.real_global("y")
                .expect("y")
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            e.per_proc.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            (s.messages, s.bytes, s.phases, s.comm_seconds.to_bits()),
            exec.machine().epoch(),
        )
    };

    let want = drive(None);
    let registry = Arc::new(MetricsRegistry::new(workers));
    let got = drive(Some(Arc::clone(&registry)));
    assert_eq!(got, want, "metering perturbed the executor run");

    let snap = registry.snapshot();
    assert!(snap.counter(Counter::Epochs) > 0, "no epochs");
    assert!(snap.counter(Counter::KernelRuns) > 0, "no kernel runs");
    assert!(snap.counter(Counter::CombineRuns) > 0, "no combine runs");
    assert!(
        snap.counter(Counter::CheckpointRefreshes) > 0,
        "checkpoint cadence left no refreshes"
    );
    assert!(snap.counter(Counter::PackMessages) > 0, "no pack volume");
    assert!(snap.counter(Counter::PackBytes) > 0, "no pack bytes");
    assert!(
        snap.spans
            .iter()
            .any(|c| c.engine == EngineKind::Pooled && c.hist.count > 0),
        "no pooled spans"
    );
    // The auditor paired modeled and wall deltas at phase-kind boundaries.
    let audit = registry.audit_report();
    assert!(!audit.rows.is_empty(), "auditor sampled no phase kinds");
    assert!(
        audit.rows.iter().all(|r| r.samples > 0),
        "audit rows must carry samples"
    );
    // The three exposition surfaces agree on the counter totals.
    let prom = snap.prometheus_text();
    assert!(prom.contains(&format!(
        "chaos_epochs_total {}",
        snap.counter(Counter::Epochs)
    )));
    let json = snap.to_json();
    assert!(json.contains(&format!("\"epochs\":{}", snap.counter(Counter::Epochs))));
}
