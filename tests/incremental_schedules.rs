//! Cross-loop incremental schedules must be invisible in every computed
//! bit: randomized multi-loop programs run with incremental schedules on
//! and off, and the two modes must agree byte-for-byte on array values —
//! while within each mode all three SPMD engines (`Machine`,
//! `ThreadedBackend`, `PooledBackend`) must agree on *everything*: values,
//! per-processor clock f64 bit patterns, communication statistics and the
//! executor's report counters. A fault-injected incremental run must
//! recover bit-identically to a fault-free one.

use chaos_repro::dmsim::{Backend, FaultKind, FaultPlan, MachineConfig, RecoveryPolicy};
use chaos_repro::lang::{lower_program, parse_program, CompiledProgram, Executor, ProgramInputs};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Two FORALLs reading `x` over the same node distribution: the classic
/// mesh shape where the second loop's ghost set overlaps the first's and
/// the incremental inspector fetches only the difference.
const MULTI_LOOP_PROGRAM: &str = r#"
    REAL*8 x(nnode), y(nnode), z(nnode)
    INTEGER e1(nedge), e2(nedge), f1(nface), f2(nface)
    DECOMPOSITION regn(nnode), rege(nedge), regf(nface)
    DISTRIBUTE regn(BLOCK)
    DISTRIBUTE rege(BLOCK)
    DISTRIBUTE regf(BLOCK)
    ALIGN x, y, z WITH regn
    ALIGN e1, e2 WITH rege
    ALIGN f1, f2 WITH regf
    CALL READ_DATA(x, y, z, e1, e2, f1, f2)
    FORALL i = 1, nedge
      REDUCE(ADD, y(e1(i)), EFLUX1(x(e1(i)), x(e2(i))))
      REDUCE(ADD, y(e2(i)), EFLUX2(x(e1(i)), x(e2(i))))
    END FORALL
    FORALL j = 1, nface
      REDUCE(ADD, z(f1(j)), x(f1(j)) * x(f2(j)))
    END FORALL
"#;

fn program() -> CompiledProgram {
    lower_program(parse_program(MULTI_LOOP_PROGRAM).unwrap()).unwrap()
}

fn inputs_from(
    nnode: usize,
    edges: &[(u32, u32)],
    faces: &[(u32, u32)],
    xseed: u64,
) -> ProgramInputs {
    let x: Vec<f64> = (0..nnode)
        .map(|i| ((i as u64).wrapping_mul(xseed) % 977) as f64 * 0.013 + 1.0)
        .collect();
    ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", edges.len())
        .scalar("nface", faces.len())
        .real("x", x)
        .real("y", vec![0.0; nnode])
        .real("z", vec![0.0; nnode])
        .int("e1", edges.iter().map(|e| e.0).collect())
        .int("e2", edges.iter().map(|e| e.1).collect())
        .int("f1", faces.iter().map(|f| f.0).collect())
        .int("f2", faces.iter().map(|f| f.1).collect())
}

/// Everything one run observes. Within a mode it must match across all
/// three engines bit-for-bit; across modes only the array values must.
#[derive(Debug, PartialEq)]
struct Observation {
    real_bits: Vec<Vec<u64>>,
    clock_bits: Vec<(u64, u64, u64)>,
    messages: usize,
    bytes: usize,
    phases: usize,
    comm_seconds_bits: u64,
    report: chaos_repro::lang::ExecReport,
}

fn observe<B: Backend>(exec: &Executor<B>) -> Observation {
    let elapsed = exec.machine().elapsed();
    let stats = exec.machine().stats().grand_totals();
    Observation {
        real_bits: ["x", "y", "z"]
            .iter()
            .map(|a| {
                exec.real_global(a)
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect(),
        clock_bits: (0..exec.machine().nprocs())
            .map(|p| {
                (
                    elapsed.per_proc[p].to_bits(),
                    elapsed.comm[p].to_bits(),
                    elapsed.idle[p].to_bits(),
                )
            })
            .collect(),
        messages: stats.messages,
        bytes: stats.bytes,
        phases: stats.phases,
        comm_seconds_bits: stats.comm_seconds.to_bits(),
        report: exec.report().clone(),
    }
}

const SWEEPS: usize = 3;

fn drive<B: Backend>(exec: &mut Executor<B>, cp: &CompiledProgram) -> Observation {
    exec.run(cp).expect("program runs");
    for _ in 0..SWEEPS {
        exec.execute_loop(cp, "L1").expect("sweep L1");
        exec.execute_loop(cp, "L2").expect("sweep L2");
    }
    observe(exec)
}

/// Strategy: a node count, a processor count, and random edge/face pair
/// lists (1-based; self-loops and colliding sizes are repaired in the test
/// body, keeping the strategy itself simple).
#[allow(clippy::type_complexity)]
fn mesh_strategy() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32)>, Vec<(u32, u32)>, u64)> {
    (12usize..40, 1u32..=2).prop_flat_map(|(nnode, shift)| {
        // Hypercube topology: the processor count must be a power of two.
        let nprocs = 1usize << shift;
        let n = nnode as u32;
        (
            Just(nnode),
            Just(nprocs),
            proptest::collection::vec((1u32..=n, 1u32..=n), 4usize..24),
            proptest::collection::vec((1u32..=n, 1u32..=n), 3usize..20),
            1u64..u64::MAX,
        )
    })
}

/// Drop self-loops (a distinct endpoint keeps every iteration reading two
/// rows) and keep the three index spaces' sizes pairwise distinct so their
/// decompositions get distinct DADs.
#[allow(clippy::type_complexity)]
fn repair(
    nnode: usize,
    edges: Vec<(u32, u32)>,
    faces: Vec<(u32, u32)>,
) -> (Vec<(u32, u32)>, Vec<(u32, u32)>) {
    let n = nnode as u32;
    let fix = |pairs: Vec<(u32, u32)>| -> Vec<(u32, u32)> {
        pairs
            .into_iter()
            .map(|(a, b)| if a == b { (a, a % n + 1) } else { (a, b) })
            .collect()
    };
    let mut edges = fix(edges);
    let mut faces = fix(faces);
    while faces.len() == nnode {
        faces.push((1, 2));
    }
    while edges.len() == nnode || edges.len() == faces.len() {
        edges.push((2, 3));
    }
    (edges, faces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per mode, the three engines agree on everything; across modes, the
    /// values agree bit-for-bit and incremental never sends more.
    #[test]
    fn engines_and_modes_agree_on_random_multi_loop_programs(
        (nnode, nprocs, edges, faces, xseed) in mesh_strategy()
    ) {
        let (edges, faces) = repair(nnode, edges, faces);
        let cp = program();
        let ins = inputs_from(nnode, &edges, &faces, xseed);
        let mut by_mode = Vec::new();
        for incremental in [true, false] {
            let mut seq = Executor::new(MachineConfig::ipsc860(nprocs), ins.clone())
                .with_incremental_schedules(incremental);
            let want = drive(&mut seq, &cp);

            let mut thr = Executor::new_threaded(MachineConfig::ipsc860(nprocs), ins.clone())
                .with_incremental_schedules(incremental);
            prop_assert_eq!(&drive(&mut thr, &cp), &want, "threaded engine diverged");

            let mut pool = Executor::new_pooled(MachineConfig::ipsc860(nprocs), ins.clone())
                .with_incremental_schedules(incremental);
            prop_assert_eq!(&drive(&mut pool, &cp), &want, "pooled engine diverged");

            by_mode.push(want);
        }
        let (incr, full) = (&by_mode[0], &by_mode[1]);
        prop_assert_eq!(&incr.real_bits, &full.real_bits,
            "incremental schedules changed a computed value");
        prop_assert!(incr.messages <= full.messages,
            "incremental sent more messages ({} vs {})", incr.messages, full.messages);
        prop_assert!(incr.bytes <= full.bytes,
            "incremental moved more bytes ({} vs {})", incr.bytes, full.bytes);
        prop_assert_eq!(full.report.incremental_bindings, 0);
    }
}

/// A kernel panic injected mid-sweep into an incremental run must recover
/// bit-identically — values, clocks, statistics, counters — to a fault-free
/// incremental run on every engine (consumed faults never refire, failed
/// regions never replay their charges).
#[test]
fn faulted_incremental_run_recovers_bit_identically() {
    let cp = program();
    let edges: Vec<(u32, u32)> = (1..24u32).map(|i| (i, i + 1)).collect();
    let faces: Vec<(u32, u32)> = (1..23u32).map(|i| (i, i + 2)).collect();
    let ins = || inputs_from(24, &edges, &faces, 0x9E37);
    let nprocs = 4;
    let cfg = || MachineConfig::ipsc860(nprocs);
    let retry = || RecoveryPolicy::RetryPhase {
        max_attempts: 3,
        backoff: Duration::ZERO,
    };

    // Find an epoch inside the steady-state sweeps to fault.
    let mut probe = Executor::new(cfg(), ins());
    probe.run(&cp).unwrap();
    let start = probe.machine().epoch();
    let want = {
        for _ in 0..SWEEPS {
            probe.execute_loop(&cp, "L1").unwrap();
            probe.execute_loop(&cp, "L2").unwrap();
        }
        observe(&probe)
    };
    let end = probe.machine().epoch();
    assert!(end > start + 1, "sweeps must span several epochs");
    let mid = start + (end - start) / 2;
    let plan = || Arc::new(FaultPlan::new().with_fault(mid, 1, FaultKind::KernelPanic));

    let mut seq = Executor::new(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut seq, &cp), want, "sequential engine");

    let mut thr = Executor::new_threaded(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut thr, &cp), want, "threaded engine");

    let mut pool = Executor::new_pooled(cfg(), ins())
        .with_fault_plan(plan())
        .with_recovery_policy(retry());
    assert_eq!(drive(&mut pool, &cp), want, "pooled engine");
}

/// REDISTRIBUTE gives every aligned array a fresh irregular-distribution
/// DAD: the old resident ghost region must never serve the re-inspected
/// loop. The regression this guards: serving stale region rows (or stale
/// slot maps) after a remap would silently read pre-remap values.
#[test]
fn redistribute_invalidates_incremental_bindings() {
    let src = r#"
        REAL*8 x(nnode), y(nnode)
        INTEGER e1(nedge), e2(nedge)
        DYNAMIC, DECOMPOSITION regn(nnode), rege(nedge)
        DISTRIBUTE regn(BLOCK)
        DISTRIBUTE rege(BLOCK)
        ALIGN x, y WITH regn
        ALIGN e1, e2 WITH rege
        CALL READ_DATA(x, y, e1, e2)
        FORALL i = 1, nedge
          REDUCE(ADD, y(e1(i)), EFLUX1(x(e1(i)), x(e2(i))))
          REDUCE(ADD, y(e2(i)), EFLUX2(x(e1(i)), x(e2(i))))
        END FORALL
C$      CONSTRUCT g (nnode, LINK(nedge, e1, e2))
C$      SET dfmt BY PARTITIONING g USING RSB
C$      REDISTRIBUTE regn(dfmt)
        FORALL i = 1, nedge
          REDUCE(ADD, y(e1(i)), EFLUX1(x(e1(i)), x(e2(i))))
          REDUCE(ADD, y(e2(i)), EFLUX2(x(e1(i)), x(e2(i))))
        END FORALL
    "#;
    let cp = lower_program(parse_program(src).unwrap()).unwrap();
    let edges: Vec<(u32, u32)> = (1..32u32).map(|i| (i, i + 1)).collect();
    let nnode = 32usize;
    let x: Vec<f64> = (0..nnode).map(|i| (i as f64 * 0.29).cos() + 2.0).collect();
    let ins = ProgramInputs::new()
        .scalar("nnode", nnode)
        .scalar("nedge", edges.len())
        .real("x", x.clone())
        .real("y", vec![0.0; nnode])
        .int("e1", edges.iter().map(|e| e.0).collect())
        .int("e2", edges.iter().map(|e| e.1).collect());

    let mut incr = Executor::new(MachineConfig::ipsc860(4), ins.clone());
    incr.run(&cp).unwrap();
    // Steady-state sweeps after the remap still reuse (fresh bindings, not
    // the pre-remap region).
    for _ in 0..2 {
        incr.execute_loop(&cp, "L2").unwrap();
    }
    assert_eq!(incr.report().inspector_runs, 2, "one inspector per loop");
    assert_eq!(incr.report().reuse_hits, 2, "post-remap sweeps reuse");

    let mut full = Executor::new(MachineConfig::ipsc860(4), ins).with_incremental_schedules(false);
    full.run(&cp).unwrap();
    for _ in 0..2 {
        full.execute_loop(&cp, "L2").unwrap();
    }

    // Both loops' results agree bit-for-bit with the escape hatch: the
    // post-remap loop read post-remap values, not stale residents.
    let a = incr.real_global("y").unwrap();
    let b = full.real_global("y").unwrap();
    for (i, (u, v)) in a.iter().zip(&b).enumerate() {
        assert_eq!(u.to_bits(), v.to_bits(), "y[{i}] diverged after remap");
    }
    // And the reference: two identical sweeps of the same loop double the
    // contribution... checked structurally instead: y must differ from a
    // single-loop run, i.e. the second loop really executed.
    assert!(
        a.iter().any(|v| *v != 0.0),
        "the loops wrote off-processor reductions"
    );
}
