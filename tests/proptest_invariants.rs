//! Property-based tests on the core runtime invariants:
//!
//! * any map array yields a consistent translation table / distribution
//!   (owner+offset is a bijection onto the local index spaces),
//! * remapping between arbitrary distributions never changes array
//!   contents,
//! * the inspector's localized references always resolve to the value the
//!   global index would have produced,
//! * gather followed by scatter-add applies each off-processor contribution
//!   exactly once,
//! * partitioners always produce complete, in-range assignments and the
//!   schedule-reuse check is sound (a modified indirection array is never
//!   reported as reusable).

use chaos_repro::prelude::*;
use chaos_repro::runtime::{gather, scatter_add, Dad, Inspector, LoopId};
use proptest::prelude::*;

/// Strategy: a processor count and a map array assigning each of `n`
/// elements to one of the processors.
fn map_strategy() -> impl Strategy<Value = (usize, Vec<u32>)> {
    (2usize..=8).prop_flat_map(|p| {
        (8usize..200)
            .prop_flat_map(move |n| (Just(p), proptest::collection::vec(0u32..p as u32, n)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_table_is_a_bijection((p, map) in map_strategy()) {
        let dist = Distribution::irregular_from_map(&map, p);
        let mut seen = vec![vec![false; dist.len()]; p];
        for g in 0..map.len() {
            let (owner, offset) = dist.locate(g);
            prop_assert!(owner < p);
            prop_assert!(offset < dist.local_size(owner));
            prop_assert!(!seen[owner][offset], "two globals map to the same local slot");
            seen[owner][offset] = true;
        }
        let total: usize = (0..p).map(|q| dist.local_size(q)).sum();
        prop_assert_eq!(total, map.len());
    }

    #[test]
    fn remap_preserves_contents((p, map) in map_strategy()) {
        let n = map.len();
        let data: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
        let mut machine = Machine::new(MachineConfig::unit(p).with_topology(chaos_repro::dmsim::Topology::FullyConnected));
        let mut arr = DistArray::from_global("a", Distribution::block(n, p), &data);
        chaos_repro::runtime::remap(&mut machine, "t", &mut arr, Distribution::irregular_from_map(&map, p));
        prop_assert_eq!(arr.to_global(), data.clone());
        // And back to cyclic.
        chaos_repro::runtime::remap(&mut machine, "t", &mut arr, Distribution::cyclic(n, p));
        prop_assert_eq!(arr.to_global(), data);
    }

    #[test]
    fn localized_references_resolve_to_global_values(
        (p, map) in map_strategy(),
        seed in 0u64..1000,
    ) {
        let n = map.len();
        let dist = Distribution::irregular_from_map(&map, p);
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 + 1.0).collect();
        let arr = DistArray::from_global("x", dist.clone(), &data);
        // Random access pattern derived from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut pattern = AccessPattern::new(p);
        for q in 0..p {
            for _ in 0..10 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                pattern.refs[q].push(((state >> 33) as usize % n) as u32);
            }
        }
        let mut machine = Machine::new(MachineConfig::unit(p).with_topology(chaos_repro::dmsim::Topology::FullyConnected));
        let result = Inspector.localize(&mut machine, "prop", &dist, &pattern);
        let ghosts = gather(&mut machine, "prop", &result.schedule, &arr);
        #[allow(clippy::needless_range_loop)]
        for q in 0..p {
            for (k, &g) in pattern.refs[q].iter().enumerate() {
                let resolved = *result.localized[q][k].resolve(arr.local(q), &ghosts[q]);
                prop_assert_eq!(resolved, data[g as usize]);
            }
        }
    }

    #[test]
    fn gather_scatter_applies_each_contribution_once(
        (p, map) in map_strategy(),
    ) {
        let n = map.len();
        let dist = Distribution::irregular_from_map(&map, p);
        // Every processor references every element once -> after
        // scatter_add of all-ones ghost contributions plus local increments,
        // each element receives exactly (p) increments in total.
        let mut pattern = AccessPattern::new(p);
        for q in 0..p {
            pattern.refs[q] = (0..n as u32).collect();
        }
        let mut machine = Machine::new(MachineConfig::unit(p).with_topology(chaos_repro::dmsim::Topology::FullyConnected));
        let result = Inspector.localize(&mut machine, "prop", &dist, &pattern);
        let mut y = DistArray::from_global("y", dist.clone(), &vec![0.0; n]);
        // Local references incremented directly, ghost references through
        // the contribution buffers.
        let mut contributions: Vec<Vec<f64>> =
            (0..p).map(|q| vec![0.0; result.ghost_counts[q]]).collect();
        #[allow(clippy::needless_range_loop)]
        for q in 0..p {
            for r in &result.localized[q] {
                match r {
                    chaos_repro::runtime::LocalRef::Owned(off) => y.local_mut(q)[*off as usize] += 1.0,
                    chaos_repro::runtime::LocalRef::Ghost(slot) => contributions[q][*slot as usize] += 1.0,
                }
            }
        }
        scatter_add(&mut machine, "prop", &result.schedule, &mut y, &contributions);
        let got = y.to_global();
        for (i, v) in got.iter().enumerate() {
            prop_assert!((v - p as f64).abs() < 1e-9, "element {i} got {v}, expected {p}");
        }
    }

    #[test]
    fn partitioners_always_cover_all_vertices(
        nvertices in 16usize..300,
        nparts in 2usize..9,
        seed in 0u64..500,
    ) {
        use chaos_repro::geocol::GeoColBuilder;
        // Random geometric graph.
        let mut state = seed.wrapping_add(7);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / u32::MAX as f64).fract().abs()
        };
        let xs: Vec<f64> = (0..nvertices).map(|_| next()).collect();
        let ys: Vec<f64> = (0..nvertices).map(|_| next()).collect();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for i in 0..nvertices as u32 {
            let j = (i + 1) % nvertices as u32;
            e1.push(i);
            e2.push(j);
        }
        let g = GeoColBuilder::new(nvertices)
            .geometry(vec![xs, ys])
            .link(e1, e2)
            .build()
            .unwrap();
        for p in chaos_repro::geocol::registered_partitioner_names() {
            let partitioner = chaos_repro::geocol::partitioner_by_name(p).unwrap();
            let part = partitioner.partition(&g, nparts);
            prop_assert_eq!(part.len(), nvertices);
            prop_assert_eq!(part.nparts(), nparts);
            prop_assert_eq!(part.part_sizes().iter().sum::<usize>(), nvertices);
        }
    }

    #[test]
    fn csr_pipeline_matches_naive_reference(
        (p, map) in map_strategy(),
        seed in 0u64..1000,
        distributed_sel in 0usize..2,
    ) {
        // The flat CSR schedule + hash-free localize must produce
        // byte-identical gather/scatter results AND identical message /
        // volume accounting versus the retained naive reference
        // implementation (chaos_runtime::naive).
        use chaos_repro::runtime::naive;
        let n = map.len();
        let distributed = distributed_sel == 1;
        let dist = if distributed {
            Distribution::irregular_from_map_with_policy(
                &map, p, chaos_repro::runtime::TTablePolicy::Distributed)
        } else {
            Distribution::irregular_from_map(&map, p)
        };
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 7.0).collect();
        let arr = DistArray::from_global("x", dist.clone(), &data);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut pattern = AccessPattern::new(p);
        for q in 0..p {
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                pattern.refs[q].push(((state >> 33) as usize % n) as u32);
            }
        }

        let cfg = || MachineConfig::unit(p).with_topology(chaos_repro::dmsim::Topology::FullyConnected);
        let mut m_csr = Machine::new(cfg());
        let mut m_naive = Machine::new(cfg());

        let csr = Inspector.localize(&mut m_csr, "L", &dist, &pattern);
        let reference = naive::localize(&mut m_naive, "L", &dist, &pattern);

        // Identical localization and ghost numbering.
        prop_assert_eq!(&csr.localized, &reference.localized);
        prop_assert_eq!(&csr.ghost_counts, &reference.ghost_counts);
        prop_assert_eq!(csr.schedule.message_count(), reference.schedule.message_count());
        for q in 0..p {
            let csr_sources: Vec<(u32, u32)> = csr.schedule.ghost_sources(q).collect();
            prop_assert_eq!(&csr_sources, &reference.schedule.ghost_sources[q]);
        }

        // Byte-identical gather.
        let g_csr = gather(&mut m_csr, "L", &csr.schedule, &arr);
        let g_naive = naive::gather(&mut m_naive, "L", &reference.schedule, &arr);
        prop_assert_eq!(&g_csr, &g_naive);

        // Byte-identical scatter-add of the gathered ghosts.
        let mut y_csr = DistArray::from_global("y", dist.clone(), &vec![1.0; n]);
        let mut y_naive = y_csr.clone();
        scatter_add(&mut m_csr, "L", &csr.schedule, &mut y_csr, &g_csr);
        naive::scatter_add(&mut m_naive, "L", &reference.schedule, &mut y_naive, &g_naive);
        prop_assert_eq!(y_csr.to_global(), y_naive.to_global());

        // Identical message / volume accounting for the whole pipeline
        // (inspector + gather + scatter), and matching modeled clocks.
        let t_csr = m_csr.stats().grand_totals();
        let t_naive = m_naive.stats().grand_totals();
        prop_assert_eq!(t_csr.messages, t_naive.messages);
        prop_assert_eq!(t_csr.bytes, t_naive.bytes);
        prop_assert_eq!(t_csr.phases, t_naive.phases);
        let e_csr = m_csr.elapsed();
        let e_naive = m_naive.elapsed();
        for q in 0..p {
            prop_assert!(
                (e_csr.per_proc[q] - e_naive.per_proc[q]).abs() <= 1e-12 * e_naive.per_proc[q].abs().max(1.0),
                "proc {} modeled time diverged: {} vs {}", q, e_csr.per_proc[q], e_naive.per_proc[q]
            );
        }
    }

    #[test]
    fn reuse_check_is_conservative(
        writes in proptest::collection::vec(0usize..3, 0..12),
    ) {
        // Apply a random sequence of writes to {data array, indirection
        // array, unrelated array}; the check may only report "reuse" if no
        // indirection-array write happened since the last save.
        let mut registry = ReuseRegistry::new();
        let data = Dad::of(&Distribution::block(100, 4));
        let ind = Dad::of(&Distribution::block(333, 4));
        let unrelated = Dad::of(&Distribution::cyclic(55, 4));
        let id = LoopId::new("L");
        registry.save_inspector(id, vec![data.clone()], vec![ind.clone()]);
        let mut ind_written = false;
        for w in writes {
            match w {
                0 => registry.record_write(&data),
                1 => {
                    registry.record_write(&ind);
                    ind_written = true;
                }
                _ => registry.record_write(&unrelated),
            }
        }
        let decision = registry.check(&id, &[data], &[ind]);
        if ind_written {
            prop_assert!(!decision.can_reuse(), "reuse allowed despite indirection write");
        } else {
            prop_assert!(decision.can_reuse(), "reuse denied although nothing relevant changed");
        }
    }
}
